"""Differential harness for the batched candidate-scan kernel.

:func:`repro.perf.batchscan.flat_count_batch` must agree, graph for
graph, with the per-graph :func:`repro.perf.fastmatch.flat_exists` and
with the recursive reference matcher
(:func:`repro.graph.isomorphism.subgraph_exists_reference`) — across the
label regimes the flat kernels treat specially, under both monomorphic
and induced semantics, for whole-database and subset scans.

On top of verdict parity the suite locks down the kernel's contracts:

* **minsup early exit** is verdict-sound: the frequent/infrequent call
  against ``minsup`` always matches an exhaustive scan, hit lists are
  exactly right whenever the scan reports ``exact=True``, every hit is a
  true hit even when it does not, and ``hits + undecided`` always covers
  the true TID set (nothing is silently dropped);
* **arena reuse** leaves no state behind: interleaving many patterns
  and databases through one :class:`~repro.perf.batchscan.ScanArena`
  yields the same answers as fresh state, and the used-vertex mask is
  all-zero between scans;
* the FlatDB **admit memos** are weakly keyed and capped, so retired
  plans cannot pin memory (the PR-7 leak fix).
"""

from __future__ import annotations

import gc
import random

import pytest
from hypothesis import given, settings

from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import (
    count_support,
    subgraph_exists_reference,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.perf.batchscan import ScanArena, flat_count_batch, local_arena
from repro.perf.fastmatch import flat_exists, get_flat_plan
from repro.perf.flatgraph import ADMIT_MEMO_PLANS, FlatDB, get_flat_db

from .conftest import make_graph, path_graph, random_graph
from .test_properties import connected_graphs

REGIMES = {
    # name: (seed, vertex labels, edge labels), label-poor -> label-heavy
    "label-poor": (101, 1, 1),
    "balanced": (202, 3, 2),
    "label-heavy": (303, 8, 5),
}


def random_database(rng, graphs, vlabels, elabels):
    return GraphDatabase(
        (
            gid,
            random_graph(
                rng,
                rng.randint(2, 9),
                extra_edges=rng.randint(0, 4),
                num_vertex_labels=vlabels,
                num_edge_labels=elabels,
            ),
        )
        for gid in range(graphs)
    )


def reference_tids(pattern, database, induced=False):
    return sorted(
        gid
        for gid, graph in database
        if subgraph_exists_reference(pattern, graph, induced=induced)
    )


def batch_agrees(pattern, database, gids=None, induced=False, arena=None):
    """One scan, three matchers, one verdict — the suite's core check."""
    flat = get_flat_db(database)
    plan = get_flat_plan(pattern)
    scan = flat_count_batch(
        plan, flat, gids, induced=induced, arena=arena
    )
    pool = database.gids() if gids is None else [
        g for g in gids if g in database
    ]
    want_ref = [
        g
        for g in pool
        if subgraph_exists_reference(
            pattern, database[g], induced=induced
        )
    ]
    want_flat = [
        g
        for g in pool
        if flat_exists(plan, flat.get(g), induced=induced, count=False)
    ]
    assert want_flat == want_ref
    assert scan.exact and not scan.undecided
    assert scan.hits == want_ref
    assert scan.support == len(want_ref)
    assert scan.hits == sorted(scan.hits)
    return scan


# ----------------------------------------------------------------------
# Randomized differential sweep
# ----------------------------------------------------------------------
class TestBatchDifferential:
    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_full_scan(self, regime):
        seed, vlabels, elabels = REGIMES[regime]
        rng = random.Random(seed)
        db = random_database(rng, 25, vlabels, elabels)
        for trial in range(30):
            pattern = random_graph(
                rng,
                rng.randint(2, 5),
                extra_edges=rng.randint(0, 2),
                num_vertex_labels=vlabels,
                num_edge_labels=elabels,
            )
            for induced in (False, True):
                batch_agrees(pattern, db, induced=induced)

    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_subset_scan(self, regime):
        """Explicit gid lists: subsets, gids absent from the database,
        and the empty list."""
        seed, vlabels, elabels = REGIMES[regime]
        rng = random.Random(seed ^ 0x5B5)
        db = random_database(rng, 20, vlabels, elabels)
        for trial in range(20):
            pattern = random_graph(
                rng,
                rng.randint(2, 4),
                extra_edges=rng.randint(0, 2),
                num_vertex_labels=vlabels,
                num_edge_labels=elabels,
            )
            subset = sorted(
                rng.sample(db.gids(), rng.randint(0, len(db)))
            )
            with_ghosts = sorted(subset + [777, 888])  # silently skipped
            batch_agrees(pattern, db, gids=subset)
            scan = batch_agrees(pattern, db, gids=with_ghosts)
            assert 777 not in scan.hits and 888 not in scan.hits

    @settings(max_examples=40, deadline=None)
    @given(
        connected_graphs(max_vertices=5, vlabels=3, elabels=2),
        connected_graphs(max_vertices=8, vlabels=3, elabels=2),
        connected_graphs(max_vertices=8, vlabels=3, elabels=2),
    )
    def test_hypothesis_differential(self, pattern, target_a, target_b):
        db = GraphDatabase([(0, target_a), (1, target_b)])
        for induced in (False, True):
            batch_agrees(pattern, db, induced=induced)

    def test_empty_pattern_matches_everything(self):
        db = GraphDatabase((i, path_graph(i + 2)) for i in range(4))
        scan = flat_count_batch(
            get_flat_plan(LabeledGraph()), get_flat_db(db)
        )
        assert scan.hits == db.gids()
        scan = flat_count_batch(
            get_flat_plan(LabeledGraph()), get_flat_db(db), [1, 3, 9]
        )
        assert scan.hits == [1, 3]

    def test_single_vertex_pattern(self):
        db = GraphDatabase(
            [(0, make_graph([0, 1], [(0, 1, 0)])), (1, make_graph([1], []))]
        )
        scan = batch_agrees(make_graph([1], []), db)
        assert scan.hits == [0, 1]
        assert batch_agrees(make_graph([7], []), db).hits == []


# ----------------------------------------------------------------------
# minsup / need_tids early-exit soundness
# ----------------------------------------------------------------------
class TestEarlyExit:
    def _sweep(self, seed, need_tids):
        rng = random.Random(seed)
        db = random_database(rng, 30, 3, 2)
        flat = get_flat_db(db)
        for trial in range(40):
            pattern = random_graph(
                rng,
                rng.randint(2, 5),
                extra_edges=rng.randint(0, 2),
                num_vertex_labels=3,
                num_edge_labels=2,
            )
            plan = get_flat_plan(pattern)
            truth = reference_tids(pattern, db)
            exhaustive = flat_count_batch(plan, flat)
            assert exhaustive.hits == truth
            for minsup in (1, 2, len(truth), len(truth) + 1, len(db) + 5):
                scan = flat_count_batch(
                    plan, flat, minsup=minsup, need_tids=need_tids
                )
                # The frequency verdict is always exact.
                assert (scan.support >= minsup) == (len(truth) >= minsup), (
                    trial, minsup, need_tids
                )
                # Hits are always true hits, in ascending order.
                assert scan.hits == sorted(scan.hits)
                assert set(scan.hits) <= set(truth)
                # Nothing vanishes: every true hit is found or undecided.
                assert set(truth) <= set(scan.hits) | set(scan.undecided)
                if scan.exact:
                    assert scan.hits == truth and not scan.undecided
                if need_tids and len(truth) >= minsup:
                    # Frequent + need_tids: the TID set must be complete.
                    assert scan.exact and scan.hits == truth

    def test_need_tids_scan_exact_when_frequent(self):
        self._sweep(0xEA51, need_tids=True)

    def test_no_tids_stops_at_frequency(self):
        self._sweep(0xEA52, need_tids=False)

    def test_hopeless_scan_skips_all_searches(self):
        """minsup above the admitted count: zero searches entered."""
        db = GraphDatabase((i, path_graph(4)) for i in range(5))
        scan = flat_count_batch(
            get_flat_plan(path_graph(3)), get_flat_db(db), minsup=9
        )
        assert scan.searched == 0 and not scan.exact
        assert scan.hits == [] and len(scan.undecided) == 5

    def test_no_tids_early_stop_spares_searches(self):
        db = GraphDatabase((i, path_graph(5)) for i in range(20))
        scan = flat_count_batch(
            get_flat_plan(path_graph(3)),
            get_flat_db(db),
            minsup=3,
            need_tids=False,
        )
        assert scan.support == 3 and scan.searched == 3
        assert not scan.exact and len(scan.undecided) == 17

    def test_count_support_minsup_verdicts(self):
        """count_support with minsup: partial TIDs only below minsup,
        exact TIDs at or above it."""
        rng = random.Random(0xC0DE)
        db = random_database(rng, 25, 3, 2)
        for trial in range(25):
            pattern = random_graph(
                rng,
                rng.randint(2, 4),
                extra_edges=rng.randint(0, 2),
                num_vertex_labels=3,
                num_edge_labels=2,
            )
            truth = reference_tids(pattern, db)
            for minsup in (0, 1, len(truth), len(truth) + 2):
                support, tids = count_support(pattern, db, minsup=minsup)
                if len(truth) >= minsup:
                    assert sorted(tids) == truth
                else:
                    assert support < minsup
                    assert set(tids) <= set(truth)


# ----------------------------------------------------------------------
# Arena reuse
# ----------------------------------------------------------------------
class TestArenaReuse:
    def test_no_state_bleed_across_patterns_and_databases(self):
        """One arena, many plans and databases, interleaved — answers
        must match fresh-arena scans and the mask must stay clean."""
        rng = random.Random(0xA12E)
        arena = ScanArena()
        dbs = [random_database(rng, 12, v, e) for v, e in ((1, 1), (4, 3))]
        jobs = []
        for db in dbs:
            for _ in range(10):
                jobs.append(
                    (
                        db,
                        random_graph(
                            rng,
                            rng.randint(2, 5),
                            extra_edges=rng.randint(0, 2),
                            num_vertex_labels=4,
                            num_edge_labels=3,
                        ),
                        bool(rng.getrandbits(1)),
                    )
                )
        rng.shuffle(jobs)
        for db, pattern, induced in jobs:
            batch_agrees(pattern, db, induced=induced, arena=arena)
            assert not any(arena.used), "mask left dirty between scans"

    def test_arena_grows_to_largest_seen(self):
        arena = ScanArena()
        arena.reserve(3, 10)
        assert len(arena.assigned) == 3 and len(arena.used) == 10
        arena.reserve(5, 4)  # grows depths, keeps the larger mask
        assert len(arena.assigned) == 5 and len(arena.used) == 10
        buf = arena.used
        arena.reserve(2, 10)  # no growth: same buffer object
        assert arena.used is buf

    def test_local_arena_is_per_thread_singleton(self):
        import threading

        assert local_arena() is local_arena()
        other = []
        t = threading.Thread(target=lambda: other.append(local_arena()))
        t.start()
        t.join()
        assert other[0] is not local_arena()


# ----------------------------------------------------------------------
# Admit-memo lifecycle (the PR-7 leak fix)
# ----------------------------------------------------------------------
class TestAdmitMemoLifecycle:
    def test_dead_plans_drop_their_memos(self):
        """The memos key plans weakly: a retired plan's entries must
        vanish with it instead of pinning the FlatDB forever."""
        db = GraphDatabase((i, path_graph(4)) for i in range(3))
        flat = get_flat_db(db)
        pattern = path_graph(3)
        plan = get_flat_plan(pattern)
        flat_count_batch(plan, flat)
        assert plan in flat.admit_memo and plan in flat.scan_memo
        del plan, pattern  # the plan cache is weak too
        gc.collect()
        assert len(flat.admit_memo) == 0
        assert len(flat.scan_memo) == 0

    def test_memo_cap_drops_wholesale(self):
        flat = FlatDB([], {})
        keep = []  # hold the plans alive so only the cap can evict
        for i in range(ADMIT_MEMO_PLANS):
            g = make_graph([i], [])
            keep.append((g, get_flat_plan(g)))
            flat.plan_memo(keep[-1][1])
        assert len(flat.admit_memo) == ADMIT_MEMO_PLANS
        g = make_graph(["overflow"], [])
        overflow = get_flat_plan(g)
        flat.plan_memo(overflow)
        assert len(flat.admit_memo) == 1
        assert overflow in flat.admit_memo

    def test_database_version_change_recompiles(self):
        """Mutating a graph retires the whole FlatDB (and its memos):
        the next scan sees a fresh compilation, never a stale admit."""
        db = GraphDatabase([(0, path_graph(4))])
        flat = get_flat_db(db)
        pattern = path_graph(3)
        assert flat_count_batch(get_flat_plan(pattern), flat).hits == [0]
        db[0].set_vertex_label(0, 99)  # version bump
        fresh = get_flat_db(db)
        assert fresh is not flat
        scan = flat_count_batch(get_flat_plan(pattern), fresh)
        assert scan.hits == reference_tids(pattern, db)

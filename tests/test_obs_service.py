"""Tests for the PatternService ``/metrics`` endpoint.

Scrapes must be valid Prometheus text exposition v0.0.4, reflect real
service activity (query latency histograms, HTTP request counters, cache
counters), include the health-layer gauges, and keep label cardinality
bounded (unknown routes collapse to ``other``).
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.mining.gspan import GSpanMiner
from repro.obs import metrics as obs_metrics
from repro.serve.catalog import PatternCatalog
from repro.serve.service import PatternService, encode_graph

from .conftest import random_database

SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"(-?[0-9.e+-]+|\+Inf|-Inf|NaN)$"
)


def http_text(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return (
            response.status,
            response.headers.get("Content-Type", ""),
            response.read().decode(),
        )


def http_post(url, payload, timeout=10):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return response.status, json.loads(response.read())


@pytest.fixture
def service(tmp_path):
    db = random_database(seed=5100, num_graphs=8, n=6)
    patterns = GSpanMiner().mine(db, 3)
    catalog = PatternCatalog(tmp_path / "catalog")
    catalog.publish(patterns, database=db)
    with PatternService(catalog, db) as svc:
        yield svc


def scrape(svc):
    status, content_type, page = http_text(svc.base_url + "/metrics")
    assert status == 200
    return content_type, page


class TestMetricsEndpoint:
    def test_exposition_is_valid(self, service):
        content_type, page = scrape(service)
        assert "version=0.0.4" in content_type
        assert page.endswith("\n")
        for line in page.strip().splitlines():
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                continue
            assert SAMPLE_RE.match(line), line

    def test_serving_gauges_reflect_snapshot(self, service):
        _, page = scrape(service)
        assert "repro_serve_snapshot_version 1" in page
        match = re.search(r"repro_serve_patterns (\d+)", page)
        assert match and int(match.group(1)) > 0

    def test_queries_show_up_in_latency_histogram(self, service):
        status, body = http_post(
            service.base_url + "/query/contains",
            {"graph": encode_graph(
                random_database(seed=5100, num_graphs=1, n=4)[0]
            )},
        )
        assert status == 200 and "pids" in body
        _, page = scrape(service)
        assert re.search(
            r'repro_query_latency_seconds_count\{kind="contains"\} [1-9]',
            page,
        )
        assert re.search(
            r'repro_serve_queries_total\{kind="contains"\} [1-9]', page
        )

    def test_http_counters_label_known_routes(self, service):
        status, _, _ = http_text(service.base_url + "/healthz")
        assert status == 200
        _, page = scrape(service)
        assert re.search(
            r'repro_http_requests_total\{route="/healthz",'
            r'outcome="ok"\} [1-9]',
            page,
        )

    def test_unknown_routes_collapse_to_other(self, service):
        for path in ("/nope", "/admin", "/x" * 10):
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    service.base_url + path, timeout=10
                )
        _, page = scrape(service)
        routes = set(
            re.findall(r'repro_http_requests_total\{route="([^"]*)"', page)
        )
        for route in routes:
            assert route == "other" or route.startswith("/")
        assert "other" in routes
        assert "/nope" not in routes

    def test_health_gauges_exported(self, service):
        _, page = scrape(service)
        assert 'repro_circuit_state{circuit="query"}' in page
        assert "repro_memory_watermark_level" in page
        assert "repro_memory_usage_bytes" in page

    def test_scrape_counts_itself(self, service):
        scrape(service)
        _, page = scrape(service)
        match = re.search(
            r'repro_http_requests_total\{route="/metrics",'
            r'outcome="ok"\} (\d+)',
            page,
        )
        assert match and int(match.group(1)) >= 1

    def test_metrics_payload_direct(self, service):
        page = service.metrics_payload()
        assert "# TYPE repro_serve_patterns gauge" in page
        assert re.search(
            r'repro_serve_service_stat\{stat="[a-z_]+"\}', page
        )

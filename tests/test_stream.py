"""Tests for update streams (multi-epoch dynamic workloads)."""

from repro.updates.model import apply_updates
from repro.updates.stream import UpdateStream
from repro.updates.tracker import hot_vertex_assignment

from .conftest import random_database


def make_stream(db, drift=0.0, seed=1, **kw):
    ufreq = hot_vertex_assignment(db, hot_fraction=0.3, seed=3)
    return UpdateStream(
        db, ufreq, num_labels=5, drift=drift, seed=seed, **kw
    )


class TestBatches:
    def test_epoch_counter_advances(self):
        db = random_database(seed=970, num_graphs=8)
        stream = make_stream(db)
        plan1, _ = stream.next_batch()
        plan2, _ = stream.next_batch()
        assert (plan1.index, plan2.index) == (1, 2)

    def test_batch_shape(self):
        db = random_database(seed=971, num_graphs=10)
        stream = make_stream(db, fraction_graphs=0.5, ops_per_graph=2)
        _, batch = stream.next_batch()
        assert len(batch) == 10  # 5 graphs x 2 ops
        assert len({u.gid for u in batch}) == 5

    def test_batches_generator(self):
        db = random_database(seed=972, num_graphs=8)
        stream = make_stream(db)
        count = 0
        for plan, batch in stream.batches(3):
            apply_updates(db, batch)
            count += 1
        assert count == 3
        assert stream.epoch == 3

    def test_batches_apply_cleanly_across_epochs(self):
        db = random_database(seed=973, num_graphs=8)
        stream = make_stream(db, kind="structural", ops_per_graph=3)
        for _, batch in stream.batches(4):
            apply_updates(db, batch)  # grows graphs; must never raise

    def test_deterministic_by_seed(self):
        db1 = random_database(seed=974, num_graphs=8)
        db2 = random_database(seed=974, num_graphs=8)
        s1, s2 = make_stream(db1, seed=9), make_stream(db2, seed=9)
        assert s1.next_batch()[1] == s2.next_batch()[1]


class TestDrift:
    def test_zero_drift_keeps_hot_map(self):
        db = random_database(seed=975, num_graphs=6)
        stream = make_stream(db, drift=0.0)
        before = dict(stream.current_ufreq)
        stream.next_batch()
        assert stream.current_ufreq == before

    def test_full_drift_moves_hot_mass(self):
        db = random_database(seed=976, num_graphs=6)
        stream = make_stream(db, drift=1.0)
        before = dict(stream.current_ufreq)
        stream.next_batch()
        moved = sum(
            1
            for gid in before
            if stream.current_ufreq[gid] != before[gid]
        )
        assert moved > 0

    def test_drift_preserves_mass(self):
        db = random_database(seed=977, num_graphs=6)
        stream = make_stream(db, drift=0.7)
        before = {
            gid: sorted(values)
            for gid, values in stream.current_ufreq.items()
        }
        stream.next_batch()
        after = {
            gid: sorted(values)
            for gid, values in stream.current_ufreq.items()
        }
        assert before == after  # swaps only, no mass created

    def test_ufreq_padded_after_growth(self):
        db = random_database(seed=978, num_graphs=6)
        stream = make_stream(db, kind="structural", ops_per_graph=2)
        for _, batch in stream.batches(2):
            apply_updates(db, batch)
        stream.next_batch()
        for gid, graph in db:
            assert len(stream.current_ufreq[gid]) >= graph.num_vertices

"""Tests for Pattern and PatternSet."""

from repro.mining.base import Pattern, PatternSet

from .conftest import path_graph, triangle


def pat(graph, tids):
    return Pattern.from_graph(graph, tids)


class TestPattern:
    def test_from_graph(self):
        p = pat(triangle(), [1, 2, 3])
        assert p.support == 3
        assert p.tids == {1, 2, 3}
        assert p.size == 3

    def test_isomorphic_graphs_share_key(self):
        p1 = pat(path_graph(3), [0])
        g = path_graph(3)
        p2 = pat(g, [1])
        assert p1.key == p2.key

    def test_repr(self):
        assert "support=2" in repr(pat(triangle(), [0, 1]))


class TestPatternSet:
    def test_add_and_get(self):
        ps = PatternSet()
        p = pat(triangle(), [0, 1])
        ps.add(p)
        assert len(ps) == 1
        assert p.key in ps
        assert ps.get(p.key) is p

    def test_add_keeps_larger_tid_list(self):
        ps = PatternSet()
        ps.add(pat(triangle(), [0]))
        ps.add(pat(triangle(), [0, 1, 2]))
        assert ps.get(pat(triangle(), [0]).key).support == 3
        ps.add(pat(triangle(), [5]))  # smaller: ignored
        assert ps.get(pat(triangle(), [0]).key).support == 3

    def test_add_union_merges_tids(self):
        ps = PatternSet()
        ps.add_union(pat(triangle(), [0, 1]))
        ps.add_union(pat(triangle(), [1, 2]))
        assert ps.get(pat(triangle(), [0]).key).tids == {0, 1, 2}

    def test_remove(self):
        ps = PatternSet([pat(triangle(), [0])])
        ps.remove(pat(triangle(), [0]).key)
        assert len(ps) == 0
        ps.remove(pat(triangle(), [0]).key)  # idempotent

    def test_of_size(self):
        ps = PatternSet([pat(triangle(), [0]), pat(path_graph(3), [0])])
        assert len(ps.of_size(3)) == 1
        assert len(ps.of_size(2)) == 1
        assert ps.of_size(7) == []

    def test_max_size(self):
        ps = PatternSet([pat(triangle(), [0]), pat(path_graph(5), [0])])
        assert ps.max_size() == 4
        assert PatternSet().max_size() == 0

    def test_filter_support(self):
        ps = PatternSet(
            [pat(triangle(), [0, 1, 2]), pat(path_graph(3), [0])]
        )
        filtered = ps.filter_support(2)
        assert len(filtered) == 1

    def test_union(self):
        a = PatternSet([pat(triangle(), [0])])
        b = PatternSet([pat(triangle(), [1]), pat(path_graph(3), [2])])
        merged = a.union(b)
        assert len(merged) == 2
        assert merged.get(pat(triangle(), [0]).key).tids == {0, 1}
        assert len(a) == 1  # inputs untouched

    def test_difference_keys(self):
        a = PatternSet([pat(triangle(), [0]), pat(path_graph(3), [0])])
        b = PatternSet([pat(triangle(), [0])])
        assert a.difference_keys(b) == {pat(path_graph(3), [0]).key}

    def test_iteration(self):
        ps = PatternSet([pat(triangle(), [0]), pat(path_graph(3), [0])])
        assert {p.size for p in ps} == {2, 3}

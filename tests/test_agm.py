"""Tests for AGM-style induced subgraph mining."""

import random

from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import subgraph_exists
from repro.graph.labeled_graph import LabeledGraph
from repro.mining.agm import (
    AGMMiner,
    InducedBruteForceMiner,
    induced_pattern_key,
    vertex_deletion_cores,
)

from .conftest import make_graph, path_graph, random_database, triangle


class TestInducedSemantics:
    def test_path_not_induced_in_triangle(self):
        """The defining difference from monomorphism semantics."""
        assert subgraph_exists(path_graph(3), triangle())
        assert not subgraph_exists(path_graph(3), triangle(), induced=True)

    def test_edge_induced_in_triangle(self):
        edge = LabeledGraph.single_edge(0, 0, 0)
        assert subgraph_exists(edge, triangle(), induced=True)

    def test_induced_self(self):
        assert subgraph_exists(triangle(), triangle(), induced=True)

    def test_induced_in_larger_host(self):
        # Triangle with a pendant: the triangle IS induced, a 3-path is
        # not (its endpoints close the triangle) unless it uses the
        # pendant.
        g = make_graph(
            [0, 0, 0, 1],
            [(0, 1, 0), (1, 2, 0), (2, 0, 0), (2, 3, 0)],
        )
        assert subgraph_exists(triangle(), g, induced=True)
        pendant_path = make_graph([0, 0, 1], [(0, 1, 0), (1, 2, 0)])
        assert subgraph_exists(pendant_path, g, induced=True)


class TestInducedKeys:
    def test_single_vertex_key(self):
        g = LabeledGraph()
        g.add_vertex(7)
        assert induced_pattern_key(g) == ("vertex", 7)

    def test_larger_graphs_use_canonical_code(self):
        assert induced_pattern_key(triangle()) == induced_pattern_key(
            triangle()
        )
        assert induced_pattern_key(triangle()) != induced_pattern_key(
            path_graph(3)
        )


class TestVertexDeletionCores:
    def test_every_vertex_produces_a_core(self):
        cores = vertex_deletion_cores(triangle(labels=(1, 2, 3)))
        assert len(cores) == 3
        assert {c.removed_label for c in cores} == {1, 2, 3}

    def test_disconnected_core_allowed(self):
        # Removing the center of a star disconnects the leaves.
        g = make_graph([0, 1, 1], [(0, 1, 0), (0, 2, 0)])
        cores = vertex_deletion_cores(g)
        center_core = next(c for c in cores if c.removed_label == 0)
        assert center_core.core.num_edges == 0
        assert center_core.core.num_vertices == 2

    def test_removed_edges_recorded(self):
        g = path_graph(3)
        cores = vertex_deletion_cores(g)
        middle = next(c for c in cores if len(c.removed_edges) == 2)
        assert middle.core.num_vertices == 2


class TestAGMAgainstOracle:
    def test_small_db(self, small_db):
        for sup in (2, 3):
            got = AGMMiner().mine(small_db, sup)
            want = InducedBruteForceMiner().mine(small_db, sup)
            assert got.keys() == want.keys()
            for p in got:
                assert p.tids == want.get(p.key).tids

    def test_random_dbs(self):
        rng = random.Random(80)
        for seed in range(4):
            db = random_database(
                seed=seed + 500, num_graphs=8, n=6, extra_edges=1
            )
            sup = rng.choice([2, 3])
            got = AGMMiner().mine(db, sup)
            want = InducedBruteForceMiner().mine(db, sup)
            assert got.keys() == want.keys(), (seed, sup)

    def test_max_vertices_bound(self, medium_db):
        got = AGMMiner(max_vertices=3).mine(medium_db, 3)
        want = InducedBruteForceMiner(max_vertices=3).mine(medium_db, 3)
        assert got.keys() == want.keys()
        assert all(p.graph.num_vertices <= 3 for p in got)


class TestInducedVsMonomorphic:
    def test_triangle_heavy_database(self):
        """Induced mining must NOT report the 3-path when every
        occurrence closes into a triangle."""
        db = GraphDatabase.from_graphs([triangle(), triangle()])
        agm = AGMMiner().mine(db, 2)
        path_key = induced_pattern_key(path_graph(3))
        assert path_key not in agm.keys()
        assert induced_pattern_key(triangle()) in agm.keys()

    def test_singleton_patterns_reported(self, small_db):
        agm = AGMMiner().mine(small_db, 3)
        assert any(p.graph.num_vertices == 1 for p in agm)

    def test_stats(self, small_db):
        miner = AGMMiner()
        result = miner.mine(small_db, 2)
        assert miner.stats.levels >= 2
        assert miner.stats.patterns_found == len(result)

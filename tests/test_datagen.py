"""Tests for the synthetic data generator (Table 1 parameters)."""

import random

import pytest

from repro.datagen.kernels import generate_kernels, random_connected_graph
from repro.datagen.synthetic import (
    DatasetSpec,
    SyntheticGenerator,
    generate_dataset,
)
from repro.graph.isomorphism import subgraph_exists
from repro.mining.gspan import GSpanMiner


class TestRandomConnectedGraph:
    def test_exact_edge_count(self):
        rng = random.Random(1)
        for m in (1, 3, 7, 15):
            g = random_connected_graph(m, 4, rng)
            assert g.num_edges == m
            assert g.is_connected()

    def test_labels_in_range(self):
        rng = random.Random(2)
        g = random_connected_graph(10, 3, rng)
        assert all(0 <= g.vertex_label(v) < 3 for v in g.vertices())
        assert all(0 <= label < 3 for _, _, label in g.edges())

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            random_connected_graph(0, 3, random.Random(0))


class TestGenerateKernels:
    def test_count_and_connectivity(self):
        rng = random.Random(3)
        kernels = generate_kernels(20, 5.0, 4, rng)
        assert len(kernels) == 20
        assert all(k.is_connected() for k in kernels)
        assert all(k.num_edges >= 1 for k in kernels)

    def test_average_size_near_target(self):
        rng = random.Random(4)
        kernels = generate_kernels(200, 5.0, 4, rng)
        avg = sum(k.num_edges for k in kernels) / len(kernels)
        assert 4.0 <= avg <= 6.0


class TestDatasetSpec:
    def test_name_roundtrip(self):
        spec = DatasetSpec(200, 12, 20, 40, 5)
        assert spec.name == "D200T12N20L40I5"
        assert DatasetSpec.from_name(spec.name) == spec

    def test_k_suffix(self):
        spec = DatasetSpec.from_name("D50kT20N20L200I5")
        assert spec.num_graphs == 50000
        assert spec.avg_edges == 20
        assert spec.num_kernels == 200

    def test_invalid_name(self):
        with pytest.raises(ValueError):
            DatasetSpec.from_name("garbage")

    def test_scaled(self):
        spec = DatasetSpec.from_name("D50kT20N20L200I5")
        small = spec.scaled(num_graphs=100)
        assert small.num_graphs == 100
        assert small.avg_edges == 20


class TestSyntheticGenerator:
    def test_database_shape(self):
        db = generate_dataset("D50T8N10L15I4", seed=3)
        assert len(db) == 50
        assert 5 <= db.average_size() <= 12

    def test_deterministic_by_seed(self):
        a = generate_dataset("D20T8N10L15I4", seed=9)
        b = generate_dataset("D20T8N10L15I4", seed=9)
        for (gid_a, ga), (gid_b, gb) in zip(a, b):
            assert sorted(ga.edges()) == sorted(gb.edges())
            assert ga.vertex_labels() == gb.vertex_labels()

    def test_seeds_differ(self):
        a = generate_dataset("D20T8N10L15I4", seed=1)
        b = generate_dataset("D20T8N10L15I4", seed=2)
        assert any(
            sorted(a[g].edges()) != sorted(b[g].edges()) for g in a.gids()
        )

    def test_graphs_are_connected(self):
        db = generate_dataset("D30T10N10L15I4", seed=5)
        assert all(g.is_connected() for g in db.graphs())

    def test_kernels_recur(self):
        """Popular kernels should appear in many graphs — that is the point
        of the generator (they become the frequent patterns)."""
        gen = SyntheticGenerator(DatasetSpec(40, 10, 8, 10, 3, seed=7))
        db = gen.generate()
        best = 0
        for kernel in gen.kernels:
            hits = sum(
                1 for g in db.graphs() if subgraph_exists(kernel, g)
            )
            best = max(best, hits)
        assert best >= len(db) * 0.2

    def test_mining_finds_nontrivial_patterns(self):
        db = generate_dataset("D40T10N8L10I4", seed=11)
        result = GSpanMiner(max_size=4).mine(db, 0.25)
        assert result.max_size() >= 2

"""Tests for edge-deletion cores and overlay candidate generation."""

import random

from repro.graph.canonical import canonical_code
from repro.graph.isomorphism import subgraph_exists
from repro.graph.labeled_graph import LabeledGraph
from repro.graph.operations import edge_deletion_cores, overlay_candidates

from .conftest import make_graph, path_graph, random_graph, star_graph, triangle


class TestEdgeDeletionCores:
    def test_single_edge_has_no_cores(self):
        assert edge_deletion_cores(LabeledGraph.single_edge(0, 0, 1)) == []

    def test_path_cores(self):
        cores = edge_deletion_cores(path_graph(3))
        # Both deletions leave a single connected edge (other endpoint
        # dropped), so both produce a core.
        assert len(cores) == 2
        for core in cores:
            assert core.core.num_edges == 1
            assert core.other is None  # deleting a path end isolates it

    def test_triangle_cores(self):
        cores = edge_deletion_cores(triangle())
        assert len(cores) == 3
        for core in cores:
            assert core.core.num_edges == 2
            assert core.other is not None  # no vertex is isolated

    def test_disconnecting_deletion_skipped(self):
        # Two triangles joined by a bridge: deleting the bridge disconnects.
        g = make_graph(
            [0] * 6,
            [
                (0, 1, 0), (1, 2, 0), (2, 0, 0),
                (2, 3, 0),
                (3, 4, 0), (4, 5, 0), (5, 3, 0),
            ],
        )
        cores = edge_deletion_cores(g)
        assert len(cores) == 6  # 7 edges, bridge deletion yields no core

    def test_core_mapping_back_to_parent(self):
        g = triangle(labels=(10, 20, 30))
        for core in edge_deletion_cores(g):
            for v in core.core.vertices():
                parent = core.core_to_parent[v]
                assert core.core.vertex_label(v) == g.vertex_label(parent)

    def test_core_key_is_canonical(self):
        for core in edge_deletion_cores(triangle()):
            assert core.core_key == canonical_code(core.core)


class TestOverlayCandidates:
    def test_triangle_from_two_paths(self):
        """Self-joining two 2-edge paths must produce the triangle."""
        p = path_graph(3)
        cores_p = edge_deletion_cores(p)
        produced = set()
        for donor in cores_p:
            for host in cores_p:
                for cand in overlay_candidates(donor, host, p):
                    produced.add(canonical_code(cand))
        assert canonical_code(triangle()) in produced
        assert canonical_code(path_graph(4)) in produced
        assert (
            canonical_code(star_graph(3, center_label=0, leaf_label=0))
            in produced
        )

    def test_mismatched_cores_give_nothing(self):
        a = path_graph(3, vlabel=0)
        b = path_graph(3, vlabel=1)
        for donor in edge_deletion_cores(a):
            for host in edge_deletion_cores(b):
                assert overlay_candidates(donor, host, b) == []

    def test_candidates_have_one_more_edge(self):
        rng = random.Random(3)
        for _ in range(15):
            g = random_graph(rng, rng.randrange(3, 6), 1)
            cores = edge_deletion_cores(g)
            for donor in cores:
                for host in cores:
                    if donor.core_key != host.core_key:
                        continue
                    for cand in overlay_candidates(donor, host, g):
                        assert cand.num_edges == g.num_edges + 1

    def test_candidates_contain_host(self):
        rng = random.Random(4)
        g = random_graph(rng, 5, 2)
        cores = edge_deletion_cores(g)
        for donor in cores:
            for host in cores:
                if donor.core_key != host.core_key:
                    continue
                for cand in overlay_candidates(donor, host, g):
                    assert subgraph_exists(g, cand)


class TestJoinCompleteness:
    """FSG completeness: every connected (k+1)-graph arises from a join of
    two of its k-subgraphs over a shared connected core."""

    def test_every_graph_is_self_joinable_from_subgraphs(self):
        rng = random.Random(7)
        for _ in range(25):
            g = random_graph(rng, rng.randrange(3, 7), 2)
            if g.num_edges < 3:
                continue
            target_key = canonical_code(g)
            # All (k-1)-edge connected subgraphs by single deletion:
            parents = []
            for u, v, _ in list(g.edges()):
                work = g.copy()
                work.remove_edge(u, v)
                keep = [w for w in work.vertices() if work.degree(w) > 0]
                sub = work.induced_subgraph(keep)
                if sub.is_connected() and sub.num_edges == g.num_edges - 1:
                    parents.append(sub)
            assert len(parents) >= 2, "lemma: >=2 connected deletions"
            produced = set()
            for p in parents:
                cores_p = edge_deletion_cores(p)
                for q in parents:
                    cores_q = edge_deletion_cores(q)
                    for donor in cores_p:
                        for host in cores_q:
                            for cand in overlay_candidates(donor, host, q):
                                produced.add(canonical_code(cand))
            assert target_key in produced

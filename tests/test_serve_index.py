"""Tests for the fragment index (repro.serve.index).

The index is a pure pruning device, so the load-bearing properties are
(1) soundness — no true supporter is ever filtered out — and (2) lossless
serialization.  Both are checked differentially / by round-trip here;
byte-identical *answers* are pinned in test_serve_engine.py.
"""

import pytest
from hypothesis import given, settings

from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import subgraph_exists
from repro.mining.gspan import GSpanMiner
from repro.serve.index import FragmentIndex, graph_fragments

from .conftest import make_graph, path_graph, random_database, triangle
from .test_properties import connected_graphs, databases


def mined_graphs(seed=4200, num_graphs=8, min_support=3):
    db = random_database(seed=seed, num_graphs=num_graphs)
    patterns = GSpanMiner().mine(db, min_support)
    return db, [p.graph for p in patterns]


class TestGraphFragments:
    def test_single_edge(self):
        edge = make_graph([1, 2], [(0, 1, 5)])
        assert graph_fragments(edge) == {("e", 1, 5, 2)}

    def test_path_has_one_path_fragment(self):
        path = path_graph(3, vlabel=0, elabel=0)
        fragments = graph_fragments(path)
        assert ("e", 0, 0, 0) in fragments
        assert ("p", 0, 0, 0, 0, 0) in fragments
        assert len(fragments) == 2

    def test_path_fragment_normalized(self):
        # 1 -a- 0 -b- 2 and its mirror produce the same fragment.
        left = make_graph([1, 0, 2], [(0, 1, 7), (1, 2, 8)])
        right = make_graph([2, 0, 1], [(0, 1, 8), (1, 2, 7)])
        assert graph_fragments(left) == graph_fragments(right)

    def test_isolated_vertex_has_no_fragments(self):
        single = make_graph([3], [])
        assert graph_fragments(single) == frozenset()

    def test_memoization_invalidated_by_mutation(self):
        graph = path_graph(3)
        before = graph_fragments(graph)
        assert graph_fragments(graph) is before  # cached
        graph.add_vertex(9)
        graph.add_edge(2, 3, 4)
        after = graph_fragments(graph)
        assert after != before
        assert ("e", 0, 4, 9) in after


class TestCandidateSoundness:
    """No graph/pattern truly containing the query may be pruned."""

    @pytest.mark.parametrize("induced", [False, True])
    def test_candidate_graphs_keep_all_supporters(self, induced):
        db, patterns = mined_graphs(seed=4301)
        index = FragmentIndex.build(patterns, db)
        for pattern in patterns:
            candidates = index.candidate_graphs(graph_fragments(pattern))
            assert candidates is not None
            for gid, graph in db:
                if subgraph_exists(pattern, graph, induced=induced):
                    assert gid in candidates

    @pytest.mark.parametrize("induced", [False, True])
    def test_candidate_patterns_keep_all_hits(self, induced):
        db, patterns = mined_graphs(seed=4302)
        index = FragmentIndex.build(patterns)
        for gid, graph in db:
            candidates = set(
                index.candidate_patterns(graph_fragments(graph))
            )
            for pid, pattern in enumerate(patterns):
                if subgraph_exists(pattern, graph, induced=induced):
                    assert pid in candidates

    def test_no_graph_side_returns_none(self):
        index = FragmentIndex.build([triangle()])
        assert index.candidate_graphs(graph_fragments(triangle())) is None
        assert not index.has_graph_postings

    def test_fragment_free_pattern_never_pruned(self):
        db = GraphDatabase.from_graphs([triangle(), path_graph(2)])
        index = FragmentIndex.build([make_graph([0], [])], db)
        assert index.candidate_graphs(frozenset()) == {0, 1}
        # And a fragment-free pattern is always a contains-candidate.
        assert index.candidate_patterns(graph_fragments(triangle())) == [0]
        assert index.candidate_patterns(frozenset()) == [0]

    def test_unknown_fragment_prunes_everything(self):
        db = GraphDatabase.from_graphs([triangle()])
        index = FragmentIndex.build([triangle()], db)
        alien = make_graph([9, 9], [(0, 1, 9)])
        assert index.candidate_graphs(graph_fragments(alien)) == set()

    def test_sub_and_superpattern_candidates(self):
        patterns = [path_graph(2), path_graph(3), triangle()]
        index = FragmentIndex.build(patterns)
        # The single edge embeds into everything: all are supercandidates.
        assert index.superpattern_candidates(0) == [0, 1, 2]
        # Everything listed may embed into the triangle (path3 does too).
        assert set(index.subpattern_candidates(2)) >= {0, 1, 2}
        for pid in range(3):
            assert pid in index.subpattern_candidates(pid)
            assert pid in index.superpattern_candidates(pid)


class TestStaleness:
    def test_fresh_index_has_no_stale_gids(self):
        db = random_database(seed=4400, num_graphs=5)
        index = FragmentIndex.build([path_graph(2)], db)
        assert index.stale_gids(db) == set()

    def test_mutated_graph_goes_stale(self):
        db = random_database(seed=4401, num_graphs=5)
        index = FragmentIndex.build([path_graph(2)], db)
        db[2].add_vertex(7)
        assert index.stale_gids(db) == {2}

    def test_added_graph_goes_stale(self):
        db = random_database(seed=4402, num_graphs=3)
        index = FragmentIndex.build([path_graph(2)], db)
        db.add(99, triangle())
        assert index.stale_gids(db) == {99}

    def test_index_without_graphs_reports_all_stale(self):
        db = random_database(seed=4403, num_graphs=3)
        index = FragmentIndex.build([path_graph(2)])
        assert index.stale_gids(db) == set(db.gids())


class TestSerialization:
    def test_roundtrip_with_database(self, tmp_path):
        db, patterns = mined_graphs(seed=4500)
        index = FragmentIndex.build(patterns, db)
        assert FragmentIndex.from_dict(index.to_dict()) == index
        path = tmp_path / "index.json"
        index.save(path)
        assert FragmentIndex.load(path) == index

    def test_roundtrip_without_database(self, tmp_path):
        _, patterns = mined_graphs(seed=4501)
        index = FragmentIndex.build(patterns)
        back = FragmentIndex.from_dict(index.to_dict())
        assert back == index
        assert back.graph_postings is None

    def test_bad_format_rejected(self):
        with pytest.raises(ValueError, match="format"):
            FragmentIndex.from_dict({"format": 99})

    def test_roundtrip_preserves_candidates(self, tmp_path):
        db, patterns = mined_graphs(seed=4502)
        index = FragmentIndex.build(patterns, db)
        path = tmp_path / "index.json"
        index.save(path)
        back = FragmentIndex.load(path)
        for pattern in patterns:
            fragments = graph_fragments(pattern)
            assert back.candidate_graphs(fragments) == (
                index.candidate_graphs(fragments)
            )
        for _, graph in db:
            fragments = graph_fragments(graph)
            assert back.candidate_patterns(fragments) == (
                index.candidate_patterns(fragments)
            )

    @settings(max_examples=60, deadline=None)
    @given(databases(max_graphs=5, max_vertices=6))
    def test_roundtrip_property(self, db):
        patterns = [graph for _, graph in db]
        index = FragmentIndex.build(patterns, db)
        assert FragmentIndex.from_dict(index.to_dict()) == index

    @settings(max_examples=60, deadline=None)
    @given(
        connected_graphs(max_vertices=6),
        databases(max_graphs=5, max_vertices=6),
    )
    def test_soundness_property(self, pattern, db):
        index = FragmentIndex.build([pattern], db)
        candidates = index.candidate_graphs(graph_fragments(pattern))
        for gid, graph in db:
            if subgraph_exists(pattern, graph):
                assert gid in candidates

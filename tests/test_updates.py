"""Tests for the update model, generator, and ufreq tracking."""

import pytest

from repro.graph.database import GraphDatabase
from repro.updates.generator import UpdateGenerator
from repro.updates.model import (
    AddEdge,
    AddVertex,
    RelabelEdge,
    RelabelVertex,
    apply_update,
    apply_updates,
)
from repro.updates.tracker import UpdateFrequencyTracker, hot_vertex_assignment

from .conftest import path_graph, random_database, triangle


class TestApplyUpdate:
    def test_relabel_vertex(self):
        db = GraphDatabase.from_graphs([triangle()])
        touched = apply_update(db, RelabelVertex(0, 1, 42))
        assert db[0].vertex_label(1) == 42
        assert touched == [1]

    def test_relabel_vertex_missing(self):
        db = GraphDatabase.from_graphs([triangle()])
        with pytest.raises(ValueError, match="no vertex"):
            apply_update(db, RelabelVertex(0, 9, 42))

    def test_relabel_edge(self):
        db = GraphDatabase.from_graphs([triangle()])
        touched = apply_update(db, RelabelEdge(0, 0, 1, 7))
        assert db[0].edge_label(0, 1) == 7
        assert sorted(touched) == [0, 1]

    def test_relabel_missing_edge(self):
        db = GraphDatabase.from_graphs([path_graph(3)])
        with pytest.raises(KeyError):
            apply_update(db, RelabelEdge(0, 0, 2, 7))

    def test_add_edge(self):
        db = GraphDatabase.from_graphs([path_graph(3)])
        apply_update(db, AddEdge(0, 0, 2, 5))
        assert db[0].edge_label(0, 2) == 5

    def test_add_duplicate_edge_rejected(self):
        db = GraphDatabase.from_graphs([triangle()])
        with pytest.raises(ValueError):
            apply_update(db, AddEdge(0, 0, 1, 5))

    def test_add_vertex(self):
        db = GraphDatabase.from_graphs([path_graph(2)])
        touched = apply_update(db, AddVertex(0, 9, 1, 3))
        assert db[0].num_vertices == 3
        assert db[0].vertex_label(2) == 9
        assert db[0].edge_label(2, 1) == 3
        assert 2 in touched and 1 in touched

    def test_unknown_gid(self):
        db = GraphDatabase.from_graphs([triangle()])
        with pytest.raises(KeyError):
            apply_update(db, RelabelVertex(7, 0, 1))


class TestApplyUpdates:
    def test_batch_groups_touched_by_gid(self):
        db = GraphDatabase.from_graphs([triangle(), path_graph(3)])
        touched = apply_updates(
            db,
            [
                RelabelVertex(0, 0, 5),
                RelabelVertex(0, 2, 5),
                AddEdge(1, 0, 2, 1),
            ],
        )
        assert touched[0] == {0, 2}
        assert touched[1] == {0, 2}

    def test_sequential_dependency(self):
        # AddVertex then an edge to the new vertex.
        db = GraphDatabase.from_graphs([path_graph(2)])
        apply_updates(
            db,
            [AddVertex(0, 1, 0, 0), AddEdge(0, 1, 2, 0)],
        )
        assert db[0].num_edges == 3


class TestHotVertexAssignment:
    def test_shape_and_range(self):
        db = random_database(seed=500, num_graphs=5)
        assignment = hot_vertex_assignment(db, hot_fraction=0.3, seed=1)
        for gid, graph in db:
            assert len(assignment[gid]) == graph.num_vertices
            assert all(0 < f <= 1 for f in assignment[gid])

    def test_hot_count(self):
        db = random_database(seed=501, num_graphs=5, n=8)
        assignment = hot_vertex_assignment(
            db, hot_fraction=0.25, hot_ufreq=1.0, cold_ufreq=0.0, seed=2
        )
        for gid, graph in db:
            hot = sum(1 for f in assignment[gid] if f == 1.0)
            assert hot == max(1, round(0.25 * graph.num_vertices))

    def test_deterministic_by_seed(self):
        db = random_database(seed=502, num_graphs=4)
        a = hot_vertex_assignment(db, seed=7)
        b = hot_vertex_assignment(db, seed=7)
        assert a == b

    def test_invalid_fraction(self):
        db = random_database(seed=502, num_graphs=2)
        with pytest.raises(ValueError):
            hot_vertex_assignment(db, hot_fraction=1.5)


class TestTracker:
    def test_record_applies_and_counts(self):
        db = GraphDatabase.from_graphs([triangle()])
        tracker = UpdateFrequencyTracker()
        tracker.record(db, RelabelVertex(0, 1, 9))
        tracker.record(db, RelabelVertex(0, 1, 8))
        assert db[0].vertex_label(1) == 8
        assert tracker.count(0, 1) == 2
        assert tracker.total_updates == 2

    def test_ufreq_map_normalized(self):
        db = GraphDatabase.from_graphs([triangle()])
        tracker = UpdateFrequencyTracker()
        tracker.observe(0, [0])
        tracker.observe(0, [0])
        tracker.observe(0, [1])
        ufreq = tracker.ufreq_map(db)
        assert ufreq[0][0] == 1.0
        assert ufreq[0][1] == 0.5
        assert ufreq[0][2] == 0.0

    def test_ufreq_map_baseline(self):
        db = GraphDatabase.from_graphs([triangle()])
        tracker = UpdateFrequencyTracker()
        tracker.observe(0, [0])
        ufreq = tracker.ufreq_map(db, baseline=0.1)
        assert ufreq[0][2] == 0.1

    def test_empty_tracker(self):
        db = GraphDatabase.from_graphs([triangle()])
        ufreq = UpdateFrequencyTracker().ufreq_map(db)
        assert ufreq[0] == (0.0, 0.0, 0.0)


class TestUpdateGenerator:
    def make(self, **kw):
        return UpdateGenerator(
            num_vertex_labels=3, num_edge_labels=2, seed=kw.pop("seed", 0), **kw
        )

    def test_fraction_controls_graph_count(self):
        db = random_database(seed=510, num_graphs=10)
        ufreq = hot_vertex_assignment(db, seed=1)
        updates = self.make().generate(db, ufreq, 0.5, ops_per_graph=1)
        assert len(updates) == 5
        assert len({u.gid for u in updates}) == 5

    def test_ops_per_graph(self):
        db = random_database(seed=511, num_graphs=4)
        ufreq = hot_vertex_assignment(db, seed=1)
        updates = self.make().generate(db, ufreq, 1.0, ops_per_graph=3)
        assert len(updates) == 12

    def test_relabel_kind_produces_only_relabels(self):
        db = random_database(seed=512, num_graphs=6)
        ufreq = hot_vertex_assignment(db, seed=1)
        updates = self.make().generate(db, ufreq, 1.0, 2, kind="relabel")
        assert all(
            isinstance(u, (RelabelVertex, RelabelEdge)) for u in updates
        )

    def test_structural_kind_produces_only_additions(self):
        db = random_database(seed=513, num_graphs=6)
        ufreq = hot_vertex_assignment(db, seed=1)
        updates = self.make().generate(db, ufreq, 1.0, 2, kind="structural")
        assert all(isinstance(u, (AddEdge, AddVertex)) for u in updates)

    def test_generated_batches_apply_cleanly(self):
        db = random_database(seed=514, num_graphs=8)
        ufreq = hot_vertex_assignment(db, seed=1)
        for kind in ("relabel", "structural", "mixed"):
            work = db.copy(deep=True)
            updates = self.make(seed=3).generate(work, ufreq, 0.8, 4, kind)
            apply_updates(work, updates)  # must not raise

    def test_invalid_kind(self):
        db = random_database(seed=515, num_graphs=2)
        with pytest.raises(ValueError, match="kind"):
            self.make().generate(db, {}, 0.5, 1, kind="nope")

    def test_invalid_fraction(self):
        db = random_database(seed=515, num_graphs=2)
        with pytest.raises(ValueError, match="fraction"):
            self.make().generate(db, {}, 1.5, 1)

    def test_deterministic_by_seed(self):
        db = random_database(seed=516, num_graphs=6)
        ufreq = hot_vertex_assignment(db, seed=1)
        a = self.make(seed=9).generate(db, ufreq, 0.5, 2)
        b = self.make(seed=9).generate(db, ufreq, 0.5, 2)
        assert a == b

    def test_hot_vertices_targeted_more(self):
        # With one extremely hot vertex, most relabels should hit it.
        db = GraphDatabase.from_graphs([path_graph(6)])
        ufreq = {0: (100.0, 0.0, 0.0, 0.0, 0.0, 0.0)}
        gen = self.make(seed=4)
        updates = []
        for _ in range(30):
            updates.extend(gen.generate(db, ufreq, 1.0, 1, "relabel"))
        hits = sum(
            1
            for u in updates
            if (isinstance(u, RelabelVertex) and u.vertex == 0)
            or (isinstance(u, RelabelEdge) and 0 in (u.u, u.v))
        )
        assert hits / len(updates) > 0.8

"""Tests for IncPartMiner (paper Fig 12)."""

import pytest

from repro.core.incremental import IncrementalPartMiner
from repro.mining.gspan import GSpanMiner
from repro.updates.generator import UpdateGenerator
from repro.updates.model import AddEdge, RelabelVertex
from repro.updates.tracker import hot_vertex_assignment

from .conftest import random_database


def build(db, sup=3, **kw):
    ufreq = hot_vertex_assignment(db, hot_fraction=0.25, seed=1)
    inc = IncrementalPartMiner(**kw)
    inc.initial_mine(db, sup, ufreq=ufreq)
    return inc


class TestLifecycle:
    def test_requires_initial_mine(self):
        inc = IncrementalPartMiner()
        with pytest.raises(RuntimeError, match="initial_mine"):
            inc.apply_updates([])
        with pytest.raises(RuntimeError):
            _ = inc.database
        with pytest.raises(RuntimeError):
            _ = inc.current_patterns

    def test_initial_matches_partminer(self):
        db = random_database(seed=600, num_graphs=10, n=6)
        inc = build(db, k=2, unit_support="exact")
        truth = GSpanMiner().mine(db, 3)
        assert inc.current_patterns.keys() == truth.keys()

    def test_owns_database_copy(self):
        db = random_database(seed=601, num_graphs=6, n=5)
        inc = build(db, k=2)
        inc.database[0].set_vertex_label(0, 99)
        assert db[0].vertex_label(0) != 99


class TestExactIncrementalEquality:
    """Exact mode must equal a full re-mine after every batch."""

    @pytest.mark.parametrize("kind", ["relabel", "structural", "mixed"])
    def test_single_batch(self, kind):
        db = random_database(seed=602, num_graphs=10, n=6)
        inc = build(db, k=2, unit_support="exact", recheck_known=True)
        gen = UpdateGenerator(3, 2, seed=5)
        updates = gen.generate(inc.database, inc.ufreq, 0.4, 2, kind)
        result = inc.apply_updates(updates)
        truth = GSpanMiner().mine(inc.database, 3)
        assert result.patterns.keys() == truth.keys()
        for p in result.patterns:
            assert p.tids == truth.get(p.key).tids

    def test_multiple_batches(self):
        db = random_database(seed=603, num_graphs=10, n=6)
        inc = build(db, k=2, unit_support="exact", recheck_known=True)
        gen = UpdateGenerator(3, 2, seed=6)
        for _ in range(3):
            updates = gen.generate(inc.database, inc.ufreq, 0.3, 2, "mixed")
            result = inc.apply_updates(updates)
            truth = GSpanMiner().mine(inc.database, 3)
            assert result.patterns.keys() == truth.keys()

    @pytest.mark.parametrize("k", [3, 4])
    def test_other_unit_counts(self, k):
        db = random_database(seed=604, num_graphs=10, n=6)
        inc = build(db, k=k, unit_support="exact", recheck_known=True)
        gen = UpdateGenerator(3, 2, seed=7)
        updates = gen.generate(inc.database, inc.ufreq, 0.4, 2, "mixed")
        result = inc.apply_updates(updates)
        truth = GSpanMiner().mine(inc.database, 3)
        assert result.patterns.keys() == truth.keys()


class TestClassification:
    def test_uf_fi_if_partition_the_pattern_space(self):
        db = random_database(seed=605, num_graphs=10, n=6)
        inc = build(db, k=2, unit_support="exact", recheck_known=True)
        old_keys = inc.current_patterns.keys()
        gen = UpdateGenerator(3, 2, seed=8)
        updates = gen.generate(inc.database, inc.ufreq, 0.5, 2, "mixed")
        result = inc.apply_updates(updates)
        new_keys = result.patterns.keys()
        assert result.became_frequent.keys() == new_keys - old_keys
        assert result.unchanged.keys() == new_keys & old_keys
        assert result.became_infrequent.keys() == old_keys - new_keys
        assert (
            result.unchanged.keys() | result.became_frequent.keys()
            == new_keys
        )

    def test_targeted_relabel_creates_fi(self):
        """Relabeling a vertex label everywhere kills its patterns."""
        db = random_database(seed=606, num_graphs=8, n=6,
                             num_vertex_labels=2)
        inc = build(db, sup=2, k=2, unit_support="exact",
                    recheck_known=True)
        updates = []
        for gid, graph in inc.database:
            for v in range(graph.num_vertices):
                if graph.vertex_label(v) == 0:
                    updates.append(RelabelVertex(gid, v, 7))
        result = inc.apply_updates(updates)
        assert len(result.became_infrequent) > 0
        # Patterns mentioning label 0 cannot survive.
        for p in result.patterns:
            assert 0 not in p.graph.vertex_labels()

    def test_added_edges_create_if(self):
        """Adding the same edge to every graph creates new patterns."""
        db = random_database(seed=607, num_graphs=8, n=5)
        inc = build(db, sup=8, k=2, unit_support="exact",
                    recheck_known=True)
        from repro.updates.model import AddVertex

        updates = []
        for gid, graph in inc.database:
            # Relabel vertex 0 uniformly, then attach a fresh vertex labeled
            # 9 to it — the edge (5)-1-(9) now occurs in every graph.
            updates.append(RelabelVertex(gid, 0, 5))
            updates.append(AddVertex(gid, 9, 0, 1))
        result = inc.apply_updates(updates)
        labels_of_new = [
            p
            for p in result.became_frequent
            if 9 in p.graph.vertex_labels()
        ]
        assert labels_of_new


class TestIncrementalStats:
    def test_unaffected_units_not_remined(self):
        db = random_database(seed=608, num_graphs=10, n=6)
        inc = build(db, k=4, unit_support="paper")
        # One targeted tiny update: at most a few of the 4 units change.
        gid = inc.database.gids()[0]
        result = inc.apply_updates([RelabelVertex(gid, 0, 2)])
        assert result.stats.updated_graphs == 1
        assert result.stats.units_remined <= 4

    def test_empty_batch_is_noop(self):
        db = random_database(seed=609, num_graphs=8, n=5)
        inc = build(db, k=2, unit_support="paper")
        before = inc.current_patterns.keys()
        result = inc.apply_updates([])
        assert result.patterns.keys() == before
        assert result.stats.units_remined == 0
        assert len(result.became_frequent) == 0
        assert len(result.became_infrequent) == 0

    def test_times_recorded(self):
        db = random_database(seed=610, num_graphs=8, n=5)
        inc = build(db, k=2, unit_support="paper")
        gen = UpdateGenerator(3, 2, seed=9)
        updates = gen.generate(inc.database, inc.ufreq, 0.5, 2, "mixed")
        result = inc.apply_updates(updates)
        assert result.stats.total_time > 0
        assert result.stats.parallel_time <= result.stats.total_time

    def test_state_advances_between_batches(self):
        db = random_database(seed=611, num_graphs=8, n=5)
        inc = build(db, k=2, unit_support="paper")
        gen = UpdateGenerator(3, 2, seed=10)
        u1 = gen.generate(inc.database, inc.ufreq, 0.4, 1, "mixed")
        r1 = inc.apply_updates(u1)
        assert inc.current_patterns.keys() == r1.patterns.keys()


class TestPaperHeuristicQuality:
    def test_paper_mode_recall(self):
        db = random_database(seed=612, num_graphs=12, n=6)
        inc = build(db, k=2, unit_support="paper")
        gen = UpdateGenerator(3, 2, seed=11)
        updates = gen.generate(inc.database, inc.ufreq, 0.4, 2, "mixed")
        result = inc.apply_updates(updates)
        truth = GSpanMiner().mine(inc.database, 3)
        got = result.patterns.keys()
        recall = len(got & truth.keys()) / max(1, len(truth))
        assert recall >= 0.9

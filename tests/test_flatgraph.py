"""The flat-array (CSR) graph compiler: round-trips, caching, wire format.

:mod:`repro.perf.flatgraph` is the foundation of the accelerated match
path, so its invariants are pinned hard here:

* compiling a :class:`LabeledGraph` to a :class:`FlatGraph` and back is
  lossless (Hypothesis property);
* neighbor runs are sorted by ``(edge-label id, neighbor id)`` — the
  matcher's bisects silently return garbage otherwise;
* :func:`get_flat_db` caches per database *and* invalidates on graph
  mutation or replacement, exactly like the fingerprint cache;
* the shared-memory wire format round-trips, detects corruption via its
  digest, and remaps label ids when the attaching process's interner
  disagrees with the publisher's (exercised in a real child process);
* published segments are tracked and destroyed exactly once.
"""

from __future__ import annotations

import random
import subprocess
import sys

import pytest
from hypothesis import given, settings

from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import LabeledGraph
from repro.perf import flatgraph
from repro.perf.counters import COUNTERS
from repro.perf.flatgraph import (
    INTERNER,
    FlatDB,
    FlatGraph,
    FlatSegment,
    LabelInterner,
    attach_segment,
    get_flat_db,
    live_segments,
)
from repro.resilience.errors import ArtifactCorrupt

from .conftest import make_graph, random_database, random_graph
from .test_properties import connected_graphs


def edge_triples(graph: LabeledGraph) -> set:
    return {
        (min(u, v), max(u, v), label) for u, v, label in graph.edges()
    }


def vertex_labels(graph: LabeledGraph) -> list:
    return [graph.vertex_label(v) for v in range(graph.num_vertices)]


def assert_equivalent(a: LabeledGraph, b: LabeledGraph) -> None:
    assert vertex_labels(a) == vertex_labels(b)
    assert edge_triples(a) == edge_triples(b)


# ----------------------------------------------------------------------
# Interner
# ----------------------------------------------------------------------
class TestLabelInterner:
    def test_ids_are_dense_and_stable(self):
        interner = LabelInterner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0  # stable on re-intern
        assert len(interner) == 2
        assert interner.labels == ["a", "b"]

    def test_lookup_does_not_assign(self):
        interner = LabelInterner()
        assert interner.lookup("never") is None
        assert len(interner) == 0


# ----------------------------------------------------------------------
# FlatGraph round-trips and invariants
# ----------------------------------------------------------------------
class TestFlatGraphRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(connected_graphs(max_vertices=7, vlabels=4, elabels=3))
    def test_round_trip_preserves_semantics(self, graph):
        assert_equivalent(FlatGraph.from_labeled(graph).to_labeled(), graph)

    @settings(max_examples=60, deadline=None)
    @given(connected_graphs(max_vertices=7, vlabels=4, elabels=3))
    def test_round_trip_preserves_adjacency_order(self, graph):
        """Rebuilt rows iterate in the source graph's insertion order.

        The unit miners' extension order follows ``neighbors()``
        iteration, so anything weaker than exact order lets a worker
        that got its database via shared memory emit differently
        numbered (isomorphic) patterns than one that got a pickle.
        """
        rebuilt = FlatGraph.from_labeled(graph).to_labeled()
        for v in range(graph.num_vertices):
            assert list(rebuilt.neighbors(v)) == list(graph.neighbors(v))

    def test_shuffled_insertion_order_survives_round_trip(self):
        rng = random.Random(37)
        edges = [(u, v, rng.randrange(3)) for u in range(6) for v in range(u + 1, 6)]
        rng.shuffle(edges)
        graph = LabeledGraph()
        for _ in range(6):
            graph.add_vertex(rng.randrange(4))
        for u, v, lab in edges:
            graph.add_edge(u, v, lab)
        rebuilt = FlatGraph.from_labeled(graph).to_labeled()
        for v in range(6):
            assert list(rebuilt.neighbors(v)) == list(graph.neighbors(v))
        assert list(rebuilt.edges()) == list(graph.edges())

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs(max_vertices=7, vlabels=4, elabels=3))
    def test_rows_sorted_by_label_then_neighbor(self, graph):
        """The bisect contract: every CSR row ascends in (elab, nbr)."""
        fg = FlatGraph.from_labeled(graph)
        assert list(fg.indptr) == sorted(fg.indptr)
        assert fg.indptr[0] == 0 and fg.indptr[fg.n] == 2 * fg.m
        for v in range(fg.n):
            row = [
                (fg.elab[k], fg.nbr[k])
                for k in range(fg.indptr[v], fg.indptr[v + 1])
            ]
            assert row == sorted(row)
            assert fg.degree(v) == len(row)

    def test_empty_and_single_vertex(self):
        empty = FlatGraph.from_labeled(LabeledGraph())
        assert empty.n == 0 and empty.m == 0
        single = make_graph(["x"], [])
        fg = FlatGraph.from_labeled(single)
        assert fg.n == 1 and fg.m == 0
        assert_equivalent(fg.to_labeled(), single)

    def test_by_label_index_is_complete(self):
        graph = random_graph(random.Random(9), 8, extra_edges=2)
        fg = FlatGraph.from_labeled(graph)
        listed = sorted(v for vs in fg.by_label.values() for v in vs)
        assert listed == list(range(fg.n))
        for lid, vs in fg.by_label.items():
            assert all(fg.vlab[v] == lid for v in vs)


# ----------------------------------------------------------------------
# FlatDB caching on the database
# ----------------------------------------------------------------------
class TestFlatDBCache:
    def test_cache_hit_on_unchanged_database(self):
        db = random_database(seed=11, num_graphs=4, n=5, extra_edges=1)
        hits = COUNTERS.flat_db_hits
        first = get_flat_db(db)
        assert get_flat_db(db) is first
        assert COUNTERS.flat_db_hits == hits + 1

    def test_mutation_invalidates(self):
        db = random_database(seed=12, num_graphs=3, n=5, extra_edges=1)
        first = get_flat_db(db)
        gid = db.gids()[0]
        db[gid].set_vertex_label(0, "mutated-label")
        second = get_flat_db(db)
        assert second is not first
        assert_equivalent(second.get(gid).to_labeled(), db[gid])

    def test_replacement_invalidates(self):
        db = random_database(seed=13, num_graphs=3, n=5, extra_edges=1)
        first = get_flat_db(db)
        gid = db.gids()[0]
        db.replace(gid, make_graph([0, 1], [(0, 1, 0)]))
        assert not first.valid_for(db)
        second = get_flat_db(db)
        assert second is not first
        assert_equivalent(second.get(gid).to_labeled(), db[gid])

    def test_flat_db_matches_database(self):
        db = random_database(seed=14, num_graphs=5, n=6, extra_edges=2)
        flat = get_flat_db(db)
        assert flat.gids == db.gids()
        for gid, graph in db:
            assert_equivalent(flat.get(gid).to_labeled(), graph)

    def test_to_database_round_trip(self):
        db = random_database(seed=15, num_graphs=4, n=5, extra_edges=1)
        rebuilt = get_flat_db(db).to_database()
        assert rebuilt.gids() == db.gids()
        for gid, graph in db:
            assert_equivalent(rebuilt[gid], graph)


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestWireFormat:
    def make_flat(self, seed=21):
        db = random_database(seed=seed, num_graphs=4, n=6, extra_edges=2)
        return db, FlatDB.compile(db)

    def test_bytes_round_trip(self):
        db, flat = self.make_flat()
        parsed = flatgraph._parse_blob(flat.to_bytes())
        assert parsed.gids == db.gids()
        for gid, graph in db:
            assert_equivalent(parsed.get(gid).to_labeled(), graph)

    def test_bytes_round_trip_preserves_adjacency_order(self):
        """The wire format carries the pre-sort adjacency rows, so a
        worker-side ``to_database()`` iterates neighbors exactly like
        the parent's originals — the byte-identity contract for
        shared-memory runs."""
        db, flat = self.make_flat(25)
        rebuilt = flatgraph._parse_blob(flat.to_bytes()).to_database()
        for gid, graph in db:
            for v in range(graph.num_vertices):
                assert list(rebuilt[gid].neighbors(v)) == list(graph.neighbors(v))

    def test_bad_magic_rejected(self):
        _, flat = self.make_flat(22)
        data = bytearray(flat.to_bytes())
        data[0] ^= 0xFF
        with pytest.raises(ArtifactCorrupt):
            flatgraph._parse_blob(bytes(data))

    def test_bit_flip_rejected(self):
        _, flat = self.make_flat(23)
        data = bytearray(flat.to_bytes())
        data[len(data) // 2] ^= 0x01
        with pytest.raises(ArtifactCorrupt, match="corrupt"):
            flatgraph._parse_blob(bytes(data))

    def test_truncation_rejected(self):
        _, flat = self.make_flat(24)
        data = flat.to_bytes()
        for cut in (10, len(data) // 2, len(data) - 1):
            with pytest.raises(ArtifactCorrupt):
                flatgraph._parse_blob(data[:cut])

    def test_empty_blob_rejected(self):
        with pytest.raises(ArtifactCorrupt):
            flatgraph._parse_blob(b"")


# ----------------------------------------------------------------------
# Shared-memory segments
# ----------------------------------------------------------------------
class TestSegmentLifecycle:
    def test_publish_attach_destroy(self):
        db = random_database(seed=31, num_graphs=4, n=5, extra_edges=1)
        segment = FlatSegment.publish(get_flat_db(db))
        try:
            assert segment.name in live_segments()
            attached = attach_segment(segment.name)
            rebuilt = attached.to_database()
            assert rebuilt.gids() == db.gids()
            for gid, graph in db:
                assert_equivalent(rebuilt[gid], graph)
            attached.release()
            # release() is about the *mapping*; the segment itself is
            # still published until the owner destroys it.
            assert segment.name in live_segments()
        finally:
            segment.destroy()
        assert segment.name not in live_segments()

    def test_destroy_is_idempotent(self):
        db = random_database(seed=32, num_graphs=2, n=4, extra_edges=0)
        segment = FlatSegment.publish(get_flat_db(db))
        segment.destroy()
        segment.destroy()
        assert segment.name not in live_segments()

    def test_attach_after_destroy_fails(self):
        db = random_database(seed=33, num_graphs=2, n=4, extra_edges=0)
        segment = FlatSegment.publish(get_flat_db(db))
        segment.destroy()
        with pytest.raises(Exception):
            attach_segment(segment.name)

    def test_release_then_gc_does_not_error(self):
        """Attached FlatGraphs hold views into the mapping; release()
        must drop them before closing or the unmap raises BufferError."""
        import gc

        db = random_database(seed=34, num_graphs=3, n=5, extra_edges=1)
        segment = FlatSegment.publish(get_flat_db(db))
        try:
            attached = attach_segment(segment.name)
            fg = attached.get(db.gids()[0])  # exported pointers live here
            assert fg.n == db[db.gids()[0]].num_vertices
            del fg
            attached.release()
            assert attached.get(db.gids()[0]) is None  # unusable after
            del attached
            gc.collect()
        finally:
            segment.destroy()

    def test_cross_process_attach_remaps_label_ids(self):
        """A child whose interner assigns different ids still decodes the
        published segment into the same graphs (the meta block carries
        the publisher's label table)."""
        db = GraphDatabase.from_graphs(
            [
                make_graph(["red", "blue"], [(0, 1, "thick")]),
                make_graph(
                    ["blue", "red", "red"],
                    [(0, 1, "thin"), (1, 2, "thick")],
                ),
            ]
        )
        segment = FlatSegment.publish(get_flat_db(db))
        try:
            code = (
                "import sys\n"
                "from repro.perf import flatgraph\n"
                "# Skew the child's interner so publisher ids != local ids.\n"
                "for label in ('skew-a', 'skew-b', 'thick'):\n"
                "    flatgraph.INTERNER.intern(label)\n"
                f"flat = flatgraph.attach_segment({segment.name!r})\n"
                "for gid in flat.gids:\n"
                "    g = flat.get(gid).to_labeled()\n"
                "    vl = [g.vertex_label(v) for v in range(g.num_vertices)]\n"
                "    el = sorted(\n"
                "        (min(u, v), max(u, v), label)\n"
                "        for u, v, label in g.edges()\n"
                "    )\n"
                "    print(gid, vl, el)\n"
                "flat.release()\n"
            )
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
                cwd=str(__import__("pathlib").Path(__file__).parent.parent),
                timeout=60,
            )
            assert proc.returncode == 0, proc.stderr
            want = [
                f"{gid} {vertex_labels(g)} {sorted(edge_triples(g))}"
                for gid, g in db
            ]
            assert proc.stdout.strip().splitlines() == want
        finally:
            segment.destroy()

    def test_identity_attach_is_zero_copy(self):
        """Same-process attach (interner already agrees) keeps the arrays
        as memoryviews into the segment — no copies."""
        db = random_database(seed=35, num_graphs=3, n=5, extra_edges=1)
        segment = FlatSegment.publish(get_flat_db(db))
        try:
            attached = attach_segment(segment.name)
            fg = attached.get(db.gids()[0])
            assert isinstance(fg.vlab, memoryview)
            assert isinstance(fg.nbr, memoryview)
            del fg
            attached.release()
        finally:
            segment.destroy()

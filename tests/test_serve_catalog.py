"""Tests for the versioned pattern catalog (repro.serve.catalog)."""

import json

import pytest

from repro.mining.base import Pattern, PatternSet
from repro.mining.gspan import GSpanMiner
from repro.serve.catalog import (
    CatalogSnapshot,
    PatternCatalog,
    catalog_order,
)
from repro.serve.index import FragmentIndex

from .conftest import path_graph, random_database, triangle


def mined(seed=5100, num_graphs=8, min_support=3):
    db = random_database(seed=seed, num_graphs=num_graphs)
    return db, GSpanMiner().mine(db, min_support)


class TestCatalogOrder:
    def test_order_is_deterministic(self):
        _, patterns = mined()
        once = [p.key for p in catalog_order(patterns)]
        again = [p.key for p in catalog_order(patterns)]
        assert once == again

    def test_size_then_support_desc(self):
        ordered = catalog_order(
            PatternSet(
                [
                    Pattern.from_graph(path_graph(3), [0]),
                    Pattern.from_graph(triangle(), [0, 1, 2]),
                    Pattern.from_graph(path_graph(2), [0, 1]),
                ]
            )
        )
        assert [p.size for p in ordered] == [1, 2, 3]


class TestSnapshot:
    def test_entries_match_order(self):
        _, patterns = mined(seed=5101)
        ordered = catalog_order(patterns)
        index = FragmentIndex.build(p.graph for p in ordered)
        snapshot = CatalogSnapshot(1, patterns, index, {})
        assert len(snapshot) == len(patterns)
        for pid, entry in enumerate(snapshot.entries):
            assert entry.pid == pid
            assert entry.key == ordered[pid].key
            assert entry.support == ordered[pid].support
            assert snapshot.entry(pid) is entry

    def test_index_size_mismatch_rejected(self):
        _, patterns = mined(seed=5102)
        index = FragmentIndex.build([triangle()])
        with pytest.raises(ValueError, match="index covers"):
            CatalogSnapshot(1, patterns, index, {})


class TestPublishLoad:
    def test_empty_catalog(self, tmp_path):
        catalog = PatternCatalog(tmp_path / "cat")
        assert catalog.manifest() is None
        assert catalog.current_version() is None
        with pytest.raises(FileNotFoundError, match="no snapshot"):
            catalog.load()

    def test_publish_then_load_roundtrip(self, tmp_path):
        db, patterns = mined(seed=5200)
        catalog = PatternCatalog(tmp_path / "cat")
        published = catalog.publish(
            patterns, meta={"note": "v1"}, database=db
        )
        assert published.version == 1
        loaded = catalog.load()
        assert loaded.version == 1
        assert loaded.meta == {"note": "v1", "backend": "memory"}
        assert loaded.patterns.keys() == patterns.keys()
        assert loaded.index == published.index
        assert [e.key for e in loaded.entries] == [
            e.key for e in published.entries
        ]

    def test_versions_increment(self, tmp_path):
        db, patterns = mined(seed=5201)
        catalog = PatternCatalog(tmp_path / "cat")
        assert catalog.publish(patterns).version == 1
        assert catalog.publish(patterns, database=db).version == 2
        assert catalog.current_version() == 2
        assert catalog.versions_on_disk() == [1, 2]
        assert catalog.load().version == 2

    def test_manifest_swap_is_atomic(self, tmp_path):
        _, patterns = mined(seed=5202)
        catalog = PatternCatalog(tmp_path / "cat")
        catalog.publish(patterns)
        # No temp file left behind, and the manifest names a snapshot
        # directory that is fully present on disk.
        leftovers = [
            p.name
            for p in (tmp_path / "cat").iterdir()
            if p.name.endswith(".tmp")
        ]
        assert leftovers == []
        manifest = catalog.manifest()
        snapshot_dir = tmp_path / "cat" / manifest["snapshot"]
        assert (snapshot_dir / "patterns.jsonl").exists()
        assert (snapshot_dir / "index.json").exists()

    def test_foreign_manifest_rejected(self, tmp_path):
        catalog_dir = tmp_path / "cat"
        catalog_dir.mkdir()
        (catalog_dir / "manifest.json").write_text(
            json.dumps({"format": 99, "version": 1})
        )
        with pytest.raises(ValueError, match="catalog format"):
            PatternCatalog(catalog_dir).manifest()

    def test_pattern_count_mismatch_rejected(self, tmp_path):
        _, patterns = mined(seed=5203)
        catalog = PatternCatalog(tmp_path / "cat")
        catalog.publish(patterns)
        manifest_path = tmp_path / "cat" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["patterns"] = len(patterns) + 5
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="manifest says"):
            catalog.load()


class TestPrune:
    def test_prune_keeps_newest(self, tmp_path):
        db, patterns = mined(seed=5300)
        catalog = PatternCatalog(tmp_path / "cat")
        for _ in range(4):
            catalog.publish(patterns, database=db)
        removed = catalog.prune(keep=2)
        assert removed == [1, 2]
        assert catalog.versions_on_disk() == [3, 4]
        assert catalog.load().version == 4

    def test_prune_never_removes_current(self, tmp_path):
        _, patterns = mined(seed=5301)
        catalog = PatternCatalog(tmp_path / "cat")
        catalog.publish(patterns)
        assert catalog.prune(keep=1) == []
        assert catalog.load().version == 1

    def test_prune_requires_positive_keep(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            PatternCatalog(tmp_path / "cat").prune(keep=0)

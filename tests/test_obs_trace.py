"""Tests for tracing spans (repro.obs.trace) and the summarizer.

The centerpiece is span-tree well-formedness under the parallel runtime:
a traced ``PartMiner`` run with worker processes must produce a single
tree — one root, zero orphans — whose unit/attempt/worker spans line up
with the telemetry, even when workers are killed by fault injection.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.partminer import PartMiner
from repro.obs import summarize_spans
from repro.obs import trace as obs_trace
from repro.obs.summarize import build_tree
from repro.obs.trace import NULL_SPAN, Span, Tracer
from repro.resilience.faults import FaultPlan
from repro.runtime import RuntimeConfig

from .conftest import random_database


def span_tree(tracer):
    roots, orphans = build_tree(tracer.spans())
    return roots, orphans


# ----------------------------------------------------------------------
# Core span mechanics
# ----------------------------------------------------------------------
class TestSpanBasics:
    def test_nesting_parents_automatically(self):
        tracer = Tracer()
        with obs_trace.tracing(tracer):
            with obs.span("outer") as outer:
                with obs.span("inner") as inner:
                    assert inner.parent_id == outer.span_id
                assert obs_trace.current_span_id() == outer.span_id
        spans = {s["name"]: s for s in tracer.spans()}
        assert spans["outer"]["parent_id"] is None
        assert spans["inner"]["parent_id"] == spans["outer"]["span_id"]
        assert all(s["trace_id"] == tracer.trace_id for s in spans.values())

    def test_attrs_status_and_duration(self):
        tracer = Tracer()
        with obs_trace.tracing(tracer):
            with obs.span("work", size=3) as node:
                node.set_attr("extra", "x")
                node.set_attrs(more=1)
        (data,) = tracer.spans()
        assert data["attrs"] == {"size": 3, "extra": "x", "more": 1}
        assert data["status"] == "ok"
        assert data["duration"] >= 0

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer()
        with obs_trace.tracing(tracer):
            with pytest.raises(RuntimeError):
                with obs.span("boom"):
                    raise RuntimeError("no")
        (data,) = tracer.spans()
        assert data["status"] == "error"
        assert "RuntimeError" in data["attrs"]["status_detail"]

    def test_no_tracer_yields_null_span(self):
        with obs.span("free") as node:
            assert node is NULL_SPAN
            node.set_attr("ignored", 1)  # must not raise

    def test_kill_switch_yields_null_span(self):
        tracer = Tracer()
        with obs_trace.tracing(tracer):
            with obs.disabled():
                with obs.span("off") as node:
                    assert node is NULL_SPAN
        assert len(tracer) == 0

    def test_explicit_parent_for_thread_handoff(self):
        tracer = Tracer()
        with obs_trace.tracing(tracer):
            with obs.span("parent") as parent:
                captured = parent.span_id
            with obs.span("cross-thread", parent=captured):
                pass
        spans = {s["name"]: s for s in tracer.spans()}
        assert spans["cross-thread"]["parent_id"] == captured

    def test_begin_finish_manual_spans(self):
        tracer = Tracer()
        with obs_trace.tracing(tracer):
            with obs.span("outer") as outer:
                step = obs_trace.begin("step", n=1)
                # begin() does NOT become the contextvar parent.
                assert obs_trace.current_span_id() == outer.span_id
                obs_trace.finish(step)
        spans = {s["name"]: s for s in tracer.spans()}
        assert spans["step"]["parent_id"] == spans["outer"]["span_id"]

    def test_traced_decorator(self):
        tracer = Tracer()

        @obs_trace.traced("decorated", tag=7)
        def work():
            return 42

        with obs_trace.tracing(tracer):
            assert work() == 42
        (data,) = tracer.spans()
        assert data["name"] == "decorated"
        assert data["attrs"] == {"tag": 7}

    def test_span_dict_round_trip(self):
        node = Span("x", "t1", None, {"a": 1})
        node.end()
        clone = Span.from_dict(node.to_dict())
        assert clone.to_dict() == node.to_dict()


# ----------------------------------------------------------------------
# Worker-process handoff
# ----------------------------------------------------------------------
class TestHandoff:
    def test_handoff_round_trip_joins_parent_trace(self):
        parent = Tracer()
        with obs_trace.tracing(parent):
            with obs.span("unit.attempt") as attempt:
                handoff = obs_trace.current_handoff()
                assert handoff == {
                    "trace_id": parent.trace_id,
                    "parent_id": attempt.span_id,
                }
        # Simulate the child process: fresh tracer from the handoff.
        obs_trace.begin_in_child(handoff)
        with obs.span("unit.worker"):
            pass
        child_spans = obs_trace.collect_child_spans()
        assert obs_trace.active() is None
        parent.adopt(child_spans)

        roots, orphans = span_tree(parent)
        assert not orphans
        (root,) = roots
        assert root["name"] == "unit.attempt"
        assert root["children"][0]["name"] == "unit.worker"

    def test_handoff_is_none_when_untraced(self):
        assert obs_trace.current_handoff() is None
        tracer = Tracer()
        with obs_trace.tracing(tracer), obs.disabled():
            assert obs_trace.current_handoff() is None

    def test_adopt_rewrites_foreign_trace_ids(self):
        tracer = Tracer(trace_id="mine")
        tracer.adopt([{"name": "s", "trace_id": "theirs", "span_id": "1"}])
        (data,) = tracer.spans()
        assert data["trace_id"] == "mine"


# ----------------------------------------------------------------------
# End-to-end: the parallel runtime under a tracer
# ----------------------------------------------------------------------
def mine_traced(db, support=3, config=None):
    tracer = Tracer()
    with obs_trace.tracing(tracer):
        result = PartMiner(
            k=2,
            parallel_units=True,
            runtime=config or RuntimeConfig(max_workers=2),
        ).mine(db, support)
    return result, tracer


class TestParallelRuntimeTree:
    def test_tree_is_well_formed(self):
        db = random_database(seed=4100, num_graphs=8, n=5, extra_edges=1)
        result, tracer = mine_traced(db)

        roots, orphans = span_tree(tracer)
        assert orphans == []
        assert len(roots) == 1
        root = roots[0]
        assert root["name"] == "partminer.mine"
        phases = [c["name"] for c in root["children"]]
        assert phases == [
            "partminer.partition", "partminer.units", "partminer.merge",
        ]

        def collect(node, names):
            names.append(node["name"])
            for child in node["children"]:
                collect(child, names)

        names: list[str] = []
        collect(root, names)
        # One unit.mine per unit, each with an attempt, each attempt
        # with the worker-process span adopted across the handoff.
        assert names.count("unit.mine") == len(result.tree.units())
        assert names.count("unit.attempt") >= names.count("unit.mine")
        assert names.count("unit.worker") >= 1
        assert names.count("merge.level") == len(result.merge_times)

    def test_worker_spans_parent_to_their_attempt(self):
        db = random_database(seed=4200, num_graphs=6, n=5)
        _result, tracer = mine_traced(db)
        spans = tracer.spans()
        by_id = {s["span_id"]: s for s in spans}
        workers = [s for s in spans if s["name"] == "unit.worker"]
        assert workers
        for worker in workers:
            parent = by_id[worker["parent_id"]]
            assert parent["name"] == "unit.attempt"
            assert worker["trace_id"] == tracer.trace_id

    def test_crashed_worker_leaves_no_orphans(self):
        db = random_database(seed=4300, num_graphs=8, n=5, extra_edges=1)
        baseline, _ = mine_traced(db)

        plan = FaultPlan(seed=0)
        plan.inject("runtime.worker_start", OSError("lost"), times=1)
        with plan.active():
            result, tracer = mine_traced(
                db,
                config=RuntimeConfig(max_workers=1, max_retries=2),
            )
        assert plan.fired

        roots, orphans = span_tree(tracer)
        assert orphans == []
        assert len(roots) == 1
        # The failed attempt is in the tree, marked, and the retry
        # recovered the exact baseline patterns.
        attempts = [
            s for s in tracer.spans() if s["name"] == "unit.attempt"
        ]
        assert any(s["status"] == "error" for s in attempts)
        assert result.patterns.keys() == baseline.patterns.keys()

    def test_untraced_parallel_run_records_nothing(self):
        db = random_database(seed=4400, num_graphs=6, n=5)
        result = PartMiner(
            k=2, parallel_units=True,
            runtime=RuntimeConfig(max_workers=2),
        ).mine(db, 3)
        assert obs_trace.active() is None
        assert len(result.patterns) > 0


# ----------------------------------------------------------------------
# Summarizer
# ----------------------------------------------------------------------
class TestSummarize:
    def test_renders_tree_with_counts(self):
        db = random_database(seed=4500, num_graphs=6, n=5)
        _result, tracer = mine_traced(db)
        text = summarize_spans(tracer.spans())
        assert "partminer.mine" in text
        assert "unit.attempt" in text
        assert "0 orphan(s)" in text
        assert "1 root(s)" in text

    def test_orphans_are_reported_not_lost(self):
        spans = [
            {"name": "lonely", "span_id": "a", "parent_id": "ghost",
             "trace_id": "t", "start_time": 0.0, "duration": 0.1,
             "status": "ok", "attrs": {}},
        ]
        text = summarize_spans(spans)
        assert "(orphans)" in text
        assert "1 orphan(s)" in text

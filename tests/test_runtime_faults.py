"""Fault injection against the parallel unit-mining runtime.

A configurable worker shim (:func:`faulty_worker`) misbehaves in every way
a real fleet does — crashes (hard process death), hangs past the timeout,
garbage results, raised exceptions — for the first ``fail_attempts``
attempts, then recovers.  The suite asserts the engine's contract: retries
happen, backoff delays are ordered, exhausted units degrade to in-process
serial mining, and *no fault schedule can change the mined answer*.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.core.partminer import PartMiner, resolve_unit_threshold
from repro.mining.gaston import GastonMiner
from repro.partition.dbpartition import db_partition
from repro.runtime import (
    MiningRuntime,
    RuntimeConfig,
    UnitMiningError,
    UnitTask,
    mine_unit_worker,
)

from .conftest import random_database

# ----------------------------------------------------------------------
# The fault-injecting worker shim (top-level: must import in workers).
# ----------------------------------------------------------------------
FAULT_MODES = ("crash", "hang", "garbage", "error")


def faulty_worker(payload: dict, attempt: int):
    """Misbehave while ``attempt < fail_attempts``, then mine for real.

    The engine passes the 0-based attempt number into every worker call,
    which is what makes "fail on the first N calls" deterministic even
    though each attempt is a fresh process.
    """
    if attempt < payload["fail_attempts"]:
        mode = payload["mode"]
        if mode == "crash":
            os._exit(13)
        if mode == "hang":
            time.sleep(payload.get("hang_seconds", 60))
        if mode == "garbage":
            return {"definitely": "not a pattern list"}
        if mode == "error":
            raise ValueError("injected worker failure")
        raise AssertionError(f"unknown fault mode {mode!r}")
    return mine_unit_worker(payload["inner"], attempt)


# ----------------------------------------------------------------------
# Shared workload
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def workload():
    """Small database partitioned into 2 units + the no-fault answer."""
    db = random_database(seed=77, num_graphs=8, n=6, extra_edges=1)
    threshold = 3
    tree = db_partition(db, 2)
    units = tree.units()
    thresholds = [
        resolve_unit_threshold(u, threshold, "exact") for u in units
    ]
    clean = [
        GastonMiner().mine(u.database, t)
        for u, t in zip(units, thresholds)
    ]
    return units, thresholds, clean


def faulty_tasks(units, thresholds, mode, fail_attempts, hang_seconds=60):
    return [
        UnitTask(
            index=i,
            payload={
                "mode": mode,
                "fail_attempts": fail_attempts,
                "hang_seconds": hang_seconds,
                "inner": {
                    "graphs": list(unit.database),
                    "threshold": t,
                    "max_size": None,
                },
            },
            fallback=make_fallback(unit, t),
        )
        for i, (unit, t) in enumerate(zip(units, thresholds))
    ]


def make_fallback(unit, threshold):
    return lambda: GastonMiner().mine(unit.database, threshold)


FAST = dict(backoff_base=0.001, backoff_max=0.01, kill_grace=2.0)


# ----------------------------------------------------------------------
class TestRetries:
    @pytest.mark.parametrize("mode", FAULT_MODES)
    def test_one_failure_then_recovery(self, workload, mode):
        """Each fault kind costs exactly one retry and nothing else."""
        units, thresholds, clean = workload
        config = RuntimeConfig(unit_timeout=1.0, max_retries=2, **FAST)
        runtime = MiningRuntime(config, worker=faulty_worker)
        result = runtime.run(faulty_tasks(units, thresholds, mode, 1))

        expected_outcome = {
            "crash": "crash",
            "hang": "timeout",
            "garbage": "garbage",
            "error": "error",
        }[mode]
        for record in result.telemetry.units:
            assert record.status == "ok"
            assert [a.outcome for a in record.attempts] == [
                expected_outcome,
                "ok",
            ]
            assert record.failure_causes == [expected_outcome]
        for mined, want in zip(result.unit_results, clean):
            assert mined.keys() == want.keys()

    def test_error_message_captured(self, workload):
        units, thresholds, _ = workload
        config = RuntimeConfig(max_retries=1, **FAST)
        runtime = MiningRuntime(config, worker=faulty_worker)
        result = runtime.run(faulty_tasks(units, thresholds, "error", 1))
        first = result.telemetry.unit(0).attempts[0]
        assert "injected worker failure" in first.error

    def test_crash_records_worker_pid(self, workload):
        units, thresholds, _ = workload
        config = RuntimeConfig(max_retries=1, **FAST)
        runtime = MiningRuntime(config, worker=faulty_worker)
        result = runtime.run(faulty_tasks(units, thresholds, "crash", 1))
        attempts = result.telemetry.unit(0).attempts
        assert attempts[0].pid is not None
        assert attempts[0].pid != os.getpid()  # ran out-of-process
        assert attempts[0].pid != attempts[1].pid  # fresh process per try


class TestBackoff:
    def test_backoff_delays_are_exponential_and_ordered(self, workload):
        """Recorded sleeps follow base * factor^n, capped, in order."""
        units, thresholds, _ = workload
        config = RuntimeConfig(
            max_retries=3,
            backoff_base=0.1,
            backoff_factor=3.0,
            backoff_max=100.0,
            backoff_jitter=0.0,  # the pure exponential schedule
        )
        slept: list[float] = []
        runtime = MiningRuntime(
            config, worker=faulty_worker, sleep=slept.append
        )
        result = runtime.run(
            faulty_tasks(units[:1], thresholds[:1], "error", 3)
        )
        assert slept == [
            pytest.approx(0.1),
            pytest.approx(0.3),
            pytest.approx(0.9),
        ]
        assert slept == sorted(slept)
        # The same delays are recorded on the failed attempts.
        record = result.telemetry.unit(0)
        assert [a.backoff for a in record.attempts] == [
            pytest.approx(0.1),
            pytest.approx(0.3),
            pytest.approx(0.9),
            None,  # the final, successful attempt sleeps nothing
        ]

    def test_backoff_cap(self):
        config = RuntimeConfig(
            backoff_base=1.0, backoff_factor=10.0, backoff_max=5.0
        )
        assert config.backoff_delay(0) == 1.0
        assert config.backoff_delay(1) == 5.0
        assert config.backoff_delay(9) == 5.0

    def test_backoff_jitter_is_seeded_and_bounded(self):
        """Jitter spreads retry storms without losing reproducibility."""
        config = RuntimeConfig(
            backoff_base=0.1,
            backoff_factor=3.0,
            backoff_max=100.0,
            backoff_jitter=0.5,
            backoff_seed=7,
        )
        bare = 0.1 * 3.0**2
        delay = config.backoff_delay(2, unit=5)
        # Deterministic: same (seed, unit, attempt) -> same delay.
        assert delay == config.backoff_delay(2, unit=5)
        # Bounded: within [bare * (1 - jitter), bare].
        assert bare * 0.5 <= delay <= bare
        # Spread: different units (and seeds) land on different delays,
        # so simultaneous retries do not stampede in lockstep.
        assert delay != config.backoff_delay(2, unit=6)
        reseeded = RuntimeConfig(
            backoff_base=0.1,
            backoff_factor=3.0,
            backoff_max=100.0,
            backoff_jitter=0.5,
            backoff_seed=8,
        )
        assert delay != reseeded.backoff_delay(2, unit=5)
        # No unit context (or jitter 0) gives the bare exponential.
        assert config.backoff_delay(2) == pytest.approx(bare)

    def test_backoff_jitter_validation(self):
        with pytest.raises(ValueError):
            RuntimeConfig(backoff_jitter=1.5)


class TestDegradation:
    def test_fallback_to_serial_preserves_answer(self, workload):
        """A permanently-broken worker degrades but cannot corrupt."""
        units, thresholds, clean = workload
        config = RuntimeConfig(unit_timeout=1.0, max_retries=1, **FAST)
        runtime = MiningRuntime(config, worker=faulty_worker)
        result = runtime.run(faulty_tasks(units, thresholds, "crash", 99))

        for record in result.telemetry.units:
            assert record.status == "degraded"
            assert [a.outcome for a in record.attempts] == [
                "crash",
                "crash",
                "fallback-serial",
            ]
        for mined, want in zip(result.unit_results, clean):
            assert mined.keys() == want.keys()
            for p in mined:
                assert p.tids == want.get(p.key).tids

    def test_fallback_none_raises_with_telemetry(self, workload):
        units, thresholds, _ = workload
        config = RuntimeConfig(max_retries=1, fallback="none", **FAST)
        runtime = MiningRuntime(config, worker=faulty_worker)
        with pytest.raises(UnitMiningError) as excinfo:
            runtime.run(faulty_tasks(units, thresholds, "crash", 99))
        err = excinfo.value
        assert err.failed == [0, 1]
        assert err.telemetry.counts() == {"failed": 2}

    def test_mixed_fault_schedule_matches_fault_free_run(self, workload):
        """Different fault kinds per unit; final patterns identical."""
        units, thresholds, clean = workload
        config = RuntimeConfig(unit_timeout=1.0, max_retries=2, **FAST)
        runtime = MiningRuntime(config, worker=faulty_worker)
        tasks = faulty_tasks(units, thresholds, "crash", 2)
        tasks[1] = faulty_tasks(units, thresholds, "hang", 1)[1]
        result = runtime.run(tasks)
        assert result.telemetry.unit(0).status == "ok"  # 2 crashes, then ok
        assert result.telemetry.unit(1).status == "ok"  # 1 hang, then ok
        for mined, want in zip(result.unit_results, clean):
            assert mined.keys() == want.keys()


class TestEndToEnd:
    def test_parallel_partminer_reports_telemetry(self):
        """PartMiner(parallel_units=True) surfaces runtime telemetry and
        matches the serial run exactly."""
        db = random_database(seed=78, num_graphs=8, n=6, extra_edges=1)
        serial = PartMiner(k=2, unit_support="exact").mine(db, 3)
        parallel = PartMiner(
            k=2,
            unit_support="exact",
            parallel_units=True,
            runtime=RuntimeConfig(max_workers=2),
        ).mine(db, 3)
        assert parallel.patterns.keys() == serial.patterns.keys()
        assert parallel.telemetry is not None
        assert parallel.telemetry.counts() == {"ok": 2}
        assert serial.telemetry is None
        # Unit times come from real per-unit telemetry, not an even split.
        assert parallel.unit_times == [
            r.wall_time for r in parallel.telemetry.units
        ]

    def test_telemetry_summary_shape(self, workload):
        units, thresholds, _ = workload
        config = RuntimeConfig(max_retries=1, **FAST)
        runtime = MiningRuntime(config, worker=faulty_worker)
        result = runtime.run(faulty_tasks(units, thresholds, "error", 1))
        summary = result.telemetry.summary()
        assert summary["units"] == 2
        assert summary["statuses"] == {"ok": 2}
        assert summary["attempts"] == 4
        assert summary["retries"] == 2
        assert "ok" in result.telemetry.format_summary()


# ----------------------------------------------------------------------
# Shared-memory database segments: lifecycle under faults
# ----------------------------------------------------------------------
def crash_once_worker(payload: dict, attempt: int):
    """Die hard on the first attempt of every unit, then mine for real.

    Unlike :func:`faulty_worker`, this shim takes the *engine's own*
    payloads, so the shared-memory publish path in
    :func:`run_unit_mining` stays active."""
    if attempt == 0:
        os._exit(13)
    return mine_unit_worker(payload, attempt)


def always_crash_worker(payload: dict, attempt: int):
    os._exit(13)


class TestSharedMemorySegmentLifecycle:
    """run_unit_mining publishes each unit's database as a shared-memory
    segment (when the accel layer is on).  The contract under test: no
    fault schedule — worker crashes, attach failures, even a failed run
    — may leak a segment, and none may change the mined answer."""

    def test_worker_crash_leaks_no_segments(self, workload):
        from repro.perf import flatgraph
        from repro.perf.counters import COUNTERS
        from repro.runtime import run_unit_mining

        units, thresholds, clean = workload
        published_before = COUNTERS.shm_publishes
        result = run_unit_mining(
            units,
            thresholds,
            config=RuntimeConfig(max_retries=2, **FAST),
            worker=crash_once_worker,
        )
        # The shm path was actually exercised (not silently degraded)...
        assert COUNTERS.shm_publishes > published_before
        # ...the crashed workers left nothing behind...
        assert flatgraph.live_segments() == []
        # ...and the answer is the fault-free one.
        for record in result.telemetry.units:
            assert [a.outcome for a in record.attempts] == ["crash", "ok"]
        for mined, want in zip(result.unit_results, clean):
            assert mined.keys() == want.keys()
            for p in mined:
                assert p.tids == want.get(p.key).tids

    def test_attach_fault_falls_back_to_pickled_payloads(self, workload):
        from repro.perf import flatgraph
        from repro.resilience.faults import FaultPlan
        from repro.runtime import run_unit_mining

        units, thresholds, clean = workload
        plan = FaultPlan(seed=7).inject("perf.shm_attach", times=99)
        with plan.active():
            result = run_unit_mining(
                units, thresholds, config=RuntimeConfig(**FAST)
            )
        # The parent's verify-attach fired for every unit, so every unit
        # reverted to the pickled payload — and still mined correctly.
        assert [f.site for f in plan.fired] == ["perf.shm_attach"] * len(
            units
        )
        assert flatgraph.live_segments() == []
        for record in result.telemetry.units:
            assert record.status == "ok"
        for mined, want in zip(result.unit_results, clean):
            assert mined.keys() == want.keys()
            for p in mined:
                assert p.tids == want.get(p.key).tids

    def test_failed_run_still_destroys_segments(self, workload):
        from repro.perf import flatgraph
        from repro.runtime import run_unit_mining

        units, thresholds, _ = workload
        with pytest.raises(UnitMiningError):
            run_unit_mining(
                units,
                thresholds,
                config=RuntimeConfig(
                    max_retries=1, fallback="none", **FAST
                ),
                worker=always_crash_worker,
            )
        assert flatgraph.live_segments() == []

    def test_shared_db_off_publishes_nothing(self, workload):
        from repro.perf import flatgraph
        from repro.perf.counters import COUNTERS
        from repro.runtime import run_unit_mining

        units, thresholds, clean = workload
        published_before = COUNTERS.shm_publishes
        result = run_unit_mining(
            units,
            thresholds,
            config=RuntimeConfig(shared_db=False, **FAST),
        )
        assert COUNTERS.shm_publishes == published_before
        assert flatgraph.live_segments() == []
        for mined, want in zip(result.unit_results, clean):
            assert mined.keys() == want.keys()

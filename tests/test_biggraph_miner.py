"""End-to-end tests for BigGraphMiner, the large-graph datagen and CLI."""

from __future__ import annotations

import io
import random

import pytest

from repro.biggraph import BigGraphMiner
from repro.cli import main
from repro.datagen.large_graph import (
    LargeGraphSpec,
    generate_large_graph,
    planted_star,
)
from repro.graph.canonical import canonical_code
from repro.mining.store import dump_patterns, read_patterns

from .conftest import random_graph


def small_spec(**overrides) -> LargeGraphSpec:
    defaults = dict(
        vertices=300,
        edges_per_vertex=2,
        num_labels=6,
        communities=3,
        planted=2,
        copies=8,
        planted_size=3,
        seed=4,
    )
    defaults.update(overrides)
    return LargeGraphSpec(**defaults)


def dump_text(patterns) -> str:
    buffer = io.StringIO()
    dump_patterns(patterns, buffer)
    return buffer.getvalue()


class TestLargeGraphDatagen:
    def test_seed_deterministic(self):
        a = generate_large_graph(small_spec())
        b = generate_large_graph(small_spec())
        from repro.graph.io import write_graph

        out_a, out_b = io.StringIO(), io.StringIO()
        write_graph(a.graph, 0, out_a)
        write_graph(b.graph, 0, out_b)
        assert out_a.getvalue() == out_b.getvalue()

    def test_planted_patterns_use_reserved_labels(self):
        result = generate_large_graph(small_spec())
        spec = result.spec
        for planted in result.planted:
            assert all(
                label >= spec.num_labels
                for label in planted.graph.vertex_labels()
            )
            assert planted.copies == spec.copies

    def test_planted_stars_are_distinct(self):
        keys = {
            canonical_code(planted_star(i, num_labels=6))
            for i in range(4)
        }
        assert len(keys) == 4

    def test_graph_grows_by_planted_copies(self):
        with_planted = generate_large_graph(small_spec())
        without = generate_large_graph(small_spec(planted=0))
        spec = small_spec()
        grown = spec.planted * spec.copies * (spec.planted_size + 1)
        assert (
            with_planted.graph.num_vertices
            == without.graph.num_vertices + grown
        )


class TestBigGraphMiner:
    def test_recovers_every_planted_pattern_at_exact_mni(self):
        result = generate_large_graph(small_spec())
        mined = BigGraphMiner(radius=1, max_size=3).mine(
            result.graph, small_spec().copies
        )
        for planted in result.planted:
            pattern = mined.patterns.get(canonical_code(planted.graph))
            assert pattern is not None
            # Automorphism-free disjoint copies: MNI == copies exactly,
            # and the TID list is the minimum image set.
            assert pattern.support == planted.copies
            assert len(pattern.tids) == planted.copies

    def test_neighborhood_mode_keeps_transactional_semantics(self):
        result = generate_large_graph(small_spec())
        mined = BigGraphMiner(
            radius=1, max_size=3, support_mode="neighborhood"
        ).mine(result.graph, small_spec().copies)
        planted = result.planted[0]
        pattern = mined.patterns.get(canonical_code(planted.graph))
        assert pattern is not None
        # A planted star occurs in the neighborhood of its center and
        # of each of its leaves: center pivot sees the whole star,
        # every leaf pivot reaches the center plus the siblings at
        # distance 2... no — radius 1 from a leaf only reaches the
        # center, so only the center's neighborhood contains the star.
        assert pattern.support == planted.copies
        # TIDs are pivot ids (vertices of the big graph).
        assert all(
            0 <= tid < result.graph.num_vertices
            for tid in pattern.tids
        )

    def test_serial_and_sharded_dump_byte_identical(self, tmp_path):
        result = generate_large_graph(small_spec(vertices=200, copies=6))
        serial = BigGraphMiner(radius=1, max_size=3).mine(
            result.graph, 6
        )
        sharded = BigGraphMiner(
            radius=1, max_size=3, shards=2, run_dir=tmp_path
        ).mine(result.graph, 6)
        assert dump_text(sharded.patterns) == dump_text(serial.patterns)

    def test_sharded_uses_edge_balanced_plan(self, tmp_path):
        result = generate_large_graph(small_spec(vertices=200, copies=6))
        miner = BigGraphMiner(radius=1, max_size=2, shards=2)
        assert miner._coord_config().balance == "edges"

    def test_backend_spill_matches_in_memory(self, tmp_path):
        from repro.storage import open_backend

        rng = random.Random(21)
        graph = random_graph(rng, 60, extra_edges=30)
        resident = BigGraphMiner(radius=1, max_size=2).mine(graph, 4)
        with open_backend("sqlite", tmp_path / "n.db") as backend:
            spilled = BigGraphMiner(
                radius=1, max_size=2, backend=backend
            ).mine(graph, 4)
        assert dump_text(spilled.patterns) == dump_text(
            resident.patterns
        )

    def test_rejects_fractional_support(self):
        rng = random.Random(2)
        graph = random_graph(rng, 10)
        with pytest.raises(ValueError, match="absolute count"):
            BigGraphMiner().mine(graph, 0.5)

    def test_rejects_unknown_support_mode(self):
        with pytest.raises(ValueError, match="support_mode"):
            BigGraphMiner(support_mode="embeddings")

    def test_pivot_labels_anchor_patterns(self):
        result = generate_large_graph(small_spec())
        spec = result.spec
        # Pivot only on planted centers' labels: the planted stars stay
        # visible, with far fewer neighborhoods to mine.
        centers = frozenset(
            planted.graph.vertex_label(0) for planted in result.planted
        )
        mined = BigGraphMiner(
            radius=1, max_size=3, pivot_labels=centers
        ).mine(result.graph, spec.copies)
        assert mined.extraction.pivots == spec.planted * spec.copies
        for planted in result.planted:
            assert (
                canonical_code(planted.graph) in mined.patterns.keys()
            )


class TestBigGraphCLI:
    @pytest.fixture
    def big_files(self, tmp_path):
        graph = tmp_path / "big.tve"
        planted = tmp_path / "planted.tve"
        assert main([
            "generate-big", str(graph),
            "--vertices", "300", "--labels", "6", "--communities", "3",
            "--planted", "2", "--copies", "8",
            "--planted-out", str(planted), "--seed", "4",
        ]) == 0
        return graph, planted

    def test_generate_big_deterministic(self, tmp_path):
        a, b = tmp_path / "a.tve", tmp_path / "b.tve"
        for path in (a, b):
            main([
                "generate-big", str(path),
                "--vertices", "120", "--seed", "9",
            ])
        assert a.read_text() == b.read_text()

    def test_mine_big_recall_and_artifact(self, big_files, tmp_path, capsys):
        graph, planted = big_files
        out = tmp_path / "patterns.jsonl"
        assert main([
            "mine-big", str(graph), "8", "--radius", "1",
            "--max-size", "3", "--output", str(out),
            "--check-planted", str(planted),
        ]) == 0
        assert "planted recall: 2/2" in capsys.readouterr().out
        patterns, meta = read_patterns(out)
        assert meta["workload"] == "biggraph"
        assert meta["support_mode"] == "mni"
        assert len(patterns) > 0

    def test_mine_big_missing_planted_fails(self, big_files, tmp_path, capsys):
        graph, _planted = big_files
        absent = tmp_path / "absent.tve"
        from repro.graph.io import write_graph

        with open(absent, "w", encoding="utf-8") as handle:
            write_graph(planted_star(7, num_labels=6), 0, handle)
        assert main([
            "mine-big", str(graph), "8", "--radius", "1",
            "--max-size", "3", "--check-planted", str(absent),
        ]) == 1
        assert "planted recall: 0/1" in capsys.readouterr().out

    def test_mine_big_rejects_multi_graph_input(self, tmp_path, capsys):
        multi = tmp_path / "multi.tve"
        assert main([
            "generate", "D5T5N5L5I2", str(multi), "--seed", "1"
        ]) == 0
        assert main(["mine-big", str(multi), "2"]) == 2
        assert "single large graph" in capsys.readouterr().err

    def test_neighborhoods_summary_and_export(
        self, big_files, tmp_path, capsys
    ):
        graph, _ = big_files
        out = tmp_path / "units.tve"
        assert main([
            "neighborhoods", str(graph), "--radius", "1",
            "--shards", "2", "--output", str(out),
        ]) == 0
        text = capsys.readouterr().out
        assert "neighborhoods at radius 1" in text
        assert "shard balance 'edges'" in text
        from repro.graph.io import read_database

        units = read_database(out)
        assert len(units) > 0

"""Differential tests: the acceleration layer is behaviour-preserving.

Every fast path in :mod:`repro.perf` — the compiled-plan matcher, the
fingerprint prefilters, and the shared support cache — must return exactly
what the unaccelerated reference path returns: same verdicts, same
supports, same TID lists, same canonical keys.  These tests drive both
paths over hypothesis-generated inputs and compare them bit-for-bit.
"""

from hypothesis import given, settings, strategies as st

from repro import perf
from repro.core.join import SupportCounter
from repro.core.mergejoin import MergeJoinStats, merge_join
from repro.core.partminer import PartMiner
from repro.graph.isomorphism import (
    count_support,
    find_embeddings,
    subgraph_exists,
    subgraph_exists_reference,
)
from repro.mining.gspan import GSpanMiner

from .test_properties import connected_graphs, databases


def assert_same_patterns(got, want):
    assert got.keys() == want.keys()
    for p in got:
        q = want.get(p.key)
        assert p.support == q.support
        assert p.tids == q.tids


# ----------------------------------------------------------------------
# Matcher-level agreement
# ----------------------------------------------------------------------
class TestMatcherAgreement:
    @settings(max_examples=120, deadline=None)
    @given(
        connected_graphs(max_vertices=7),
        connected_graphs(max_vertices=5),
        st.booleans(),
    )
    def test_accel_equals_reference(self, target, pattern, induced):
        accel = perf.accel_subgraph_exists(pattern, target, induced=induced)
        reference = subgraph_exists_reference(
            pattern, target, induced=induced
        )
        assert accel == reference

    @settings(max_examples=60, deadline=None)
    @given(connected_graphs(max_vertices=6), st.booleans())
    def test_accel_reflexive(self, graph, induced):
        assert perf.accel_subgraph_exists(graph, graph, induced=induced)

    @settings(max_examples=60, deadline=None)
    @given(
        connected_graphs(max_vertices=7),
        connected_graphs(max_vertices=5),
        st.booleans(),
    )
    def test_accel_agrees_with_full_enumeration(
        self, target, pattern, induced
    ):
        any_embedding = any(
            True
            for _ in find_embeddings(pattern, target, limit=1, induced=induced)
        )
        assert (
            perf.accel_subgraph_exists(pattern, target, induced=induced)
            == any_embedding
        )

    @settings(max_examples=60, deadline=None)
    @given(connected_graphs(max_vertices=7), connected_graphs(max_vertices=5))
    def test_fingerprint_prefilter_sound(self, target, pattern):
        """A fingerprint rejection never kills a real containment."""
        fingerprint = perf.get_fingerprint(target)
        profile = perf.get_match_plan(pattern).profile
        if not fingerprint.admits(profile):
            assert not subgraph_exists_reference(pattern, target)

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs(max_vertices=6))
    def test_plan_and_fingerprint_invalidate_on_mutation(self, graph):
        plan = perf.get_match_plan(graph)
        fingerprint = perf.get_fingerprint(graph)
        assert perf.get_match_plan(graph) is plan
        assert perf.get_fingerprint(graph) is fingerprint
        graph.set_vertex_label(0, 99)
        assert perf.get_match_plan(graph) is not plan
        assert perf.get_fingerprint(graph) is not fingerprint
        assert perf.accel_subgraph_exists(graph, graph)


# ----------------------------------------------------------------------
# Support-counting agreement
# ----------------------------------------------------------------------
class TestSupportAgreement:
    @settings(max_examples=40, deadline=None)
    @given(
        databases(max_graphs=6, max_vertices=6),
        connected_graphs(max_vertices=4),
        st.booleans(),
    )
    def test_count_support_accel_equals_baseline(self, db, pattern, induced):
        with perf.disabled():
            want = count_support(pattern, db, induced=induced)
        assert count_support(pattern, db, induced=induced) == want

    @settings(max_examples=40, deadline=None)
    @given(
        databases(max_graphs=6, max_vertices=6),
        connected_graphs(max_vertices=4),
        st.booleans(),
    )
    def test_count_support_cached_equals_uncached(self, db, pattern, induced):
        cache = perf.SupportCache()
        want = count_support(pattern, db, induced=induced)
        cold = count_support(pattern, db, induced=induced, cache=cache)
        warm = count_support(pattern, db, induced=induced, cache=cache)
        assert cold == want
        assert warm == want
        assert cache.hits > 0  # second pass was served from the cache

    @settings(max_examples=30, deadline=None)
    @given(
        databases(max_graphs=6, max_vertices=6),
        connected_graphs(max_vertices=4),
    )
    def test_support_counter_accel_equals_baseline(self, db, pattern):
        with perf.disabled():
            want = SupportCounter(db).count(pattern)
        counter = SupportCounter(db, cache=perf.SupportCache())
        assert counter.count(pattern) == want
        assert counter.count(pattern) == want  # cached second pass

    @settings(max_examples=30, deadline=None)
    @given(
        databases(max_graphs=6, max_vertices=6),
        connected_graphs(max_vertices=4),
    )
    def test_candidate_gids_superset_of_support(self, db, pattern):
        """Fingerprint filtering never drops a supporting graph."""
        counter = SupportCounter(db)
        candidates = counter.candidate_gids(pattern)
        with perf.disabled():
            _, tids = count_support(pattern, db)
        assert tids <= candidates


# ----------------------------------------------------------------------
# Miner-level agreement
# ----------------------------------------------------------------------
class TestMinerAgreement:
    @settings(max_examples=10, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5), st.integers(2, 3))
    def test_merge_join_accel_equals_baseline(self, db, threshold):
        left = GSpanMiner().mine(db, threshold)
        right = GSpanMiner().mine(db, max(2, threshold - 1))
        with perf.disabled():
            want = merge_join(db, left, right, threshold)
        stats = MergeJoinStats()
        got = merge_join(
            db,
            left,
            right,
            threshold,
            stats=stats,
            support_cache=perf.SupportCache(),
        )
        assert_same_patterns(got, want)
        assert stats.vf2_tests <= stats.isomorphism_tests

    @settings(max_examples=8, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5), st.integers(2, 4))
    def test_partminer_accel_equals_baseline(self, db, k):
        with perf.disabled():
            want = PartMiner(k=k, unit_support="exact").mine(db, 2).patterns
        got = PartMiner(k=k, unit_support="exact").mine(db, 2).patterns
        assert_same_patterns(got, want)


# ----------------------------------------------------------------------
# The global switch
# ----------------------------------------------------------------------
class TestEnableSwitch:
    def test_disabled_context_restores(self):
        assert perf.enabled()
        with perf.disabled():
            assert not perf.enabled()
            with perf.disabled():
                assert not perf.enabled()
            assert not perf.enabled()
        assert perf.enabled()

    def test_set_enabled_returns_previous(self):
        previous = perf.set_enabled(False)
        try:
            assert previous is True
            assert not perf.enabled()
        finally:
            perf.set_enabled(previous)
        assert perf.enabled()

    def test_disabled_subgraph_exists_uses_reference(self):
        from repro.graph.labeled_graph import LabeledGraph
        from repro.perf.counters import COUNTERS

        g = LabeledGraph()
        g.add_vertex(0)
        g.add_vertex(1)
        g.add_edge(0, 1, 0)
        with perf.disabled():
            before = COUNTERS.plan_compiles + COUNTERS.plan_hits
            assert subgraph_exists(g, g)
            assert COUNTERS.plan_compiles + COUNTERS.plan_hits == before

"""Cross-semantics invariants: induced vs monomorphic mining."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.isomorphism import count_support, subgraph_exists
from repro.mining.agm import AGMMiner
from repro.mining.gspan import GSpanMiner

from .conftest import random_database
from .test_properties import connected_graphs, databases


class TestInducedVsMonomorphic:
    @settings(max_examples=15, deadline=None)
    @given(databases(max_graphs=5, max_vertices=5), connected_graphs(max_vertices=4))
    def test_induced_support_never_exceeds_monomorphic(self, db, pattern):
        induced_support, induced_tids = count_support(
            pattern, db, induced=True
        )
        plain_support, plain_tids = count_support(pattern, db)
        assert induced_tids <= plain_tids
        assert induced_support <= plain_support

    def test_agm_patterns_are_monomorphically_frequent_too(self):
        """Induced support <= monomorphic support, so every AGM pattern
        with >= 1 edge reappears in the gSpan result at the same
        threshold."""
        db = random_database(seed=1400, num_graphs=10, n=6)
        agm = AGMMiner().mine(db, 3)
        gspan = GSpanMiner().mine(db, 3)
        for p in agm:
            if p.graph.num_edges == 0:
                continue  # single vertices are outside gSpan's universe
            match = gspan.get(p.key)
            assert match is not None, p
            assert p.tids <= match.tids

    def test_complete_patterns_agree_across_semantics(self):
        """For a pattern as dense as its occurrences allow (a full
        triangle inside triangle-only graphs), both semantics coincide."""
        from repro.graph.database import GraphDatabase

        from .conftest import triangle

        db = GraphDatabase.from_graphs([triangle(), triangle()])
        plain = count_support(triangle(), db)
        induced = count_support(triangle(), db, induced=True)
        assert plain == induced == (2, {0, 1})

    @settings(max_examples=20, deadline=None)
    @given(connected_graphs(max_vertices=5))
    def test_induced_reflexive(self, graph):
        assert subgraph_exists(graph, graph, induced=True)

"""Golden tests: hand-verified expected outputs on a fixed tiny database.

The database below is small enough to reason about on paper; the expected
frequent sets are written out explicitly.  If any algorithm change moves
these results, either the change is wrong or mining semantics changed —
both deserve a loud failure.

Database (vertex labels in parentheses, edge labels on dashes):

  G0:  (A)-x-(B)-y-(C)          a 2-edge path
  G1:  (A)-x-(B)-y-(C) + (B)-x-(A')   (A' is a second A-labeled vertex)
  G2:  (A)-x-(B), (B)-y-(C), (C)-z-(A)   a labeled triangle
  G3:  (B)-y-(C)                a single edge
"""

import pytest

from repro.core.partminer import PartMiner
from repro.graph.canonical import canonical_code
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import LabeledGraph
from repro.mining.agm import AGMMiner, induced_pattern_key
from repro.mining.closed import closed_patterns, maximal_patterns
from repro.mining.gaston import GastonMiner
from repro.mining.gspan import GSpanMiner

from .conftest import make_graph


def golden_db() -> GraphDatabase:
    g0 = make_graph(["A", "B", "C"], [(0, 1, "x"), (1, 2, "y")])
    g1 = make_graph(
        ["A", "B", "C", "A"],
        [(0, 1, "x"), (1, 2, "y"), (1, 3, "x")],
    )
    g2 = make_graph(
        ["A", "B", "C"],
        [(0, 1, "x"), (1, 2, "y"), (2, 0, "z")],
    )
    g3 = make_graph(["B", "C"], [(0, 1, "y")])
    return GraphDatabase.from_graphs([g0, g1, g2, g3])


# Expected patterns at support >= 3 (monomorphism semantics), worked out
# by hand:
#   (A)-x-(B): in G0, G1, G2           -> support 3, tids {0,1,2}
#   (B)-y-(C): in G0, G1, G2, G3       -> support 4, tids {0,1,2,3}
#   (A)-x-(B)-y-(C): in G0, G1, G2     -> support 3, tids {0,1,2}
AB = LabeledGraph.from_vertices_and_edges(["A", "B"], [(0, 1, "x")])
BC = LabeledGraph.from_vertices_and_edges(["B", "C"], [(0, 1, "y")])
ABC = LabeledGraph.from_vertices_and_edges(
    ["A", "B", "C"], [(0, 1, "x"), (1, 2, "y")]
)
EXPECTED_SUP3 = {
    canonical_code(AB): (3, frozenset({0, 1, 2})),
    canonical_code(BC): (4, frozenset({0, 1, 2, 3})),
    canonical_code(ABC): (3, frozenset({0, 1, 2})),
}


@pytest.mark.parametrize("miner_factory", [GSpanMiner, GastonMiner])
def test_golden_frequent_set_support3(miner_factory):
    result = miner_factory().mine(golden_db(), 3)
    assert result.keys() == set(EXPECTED_SUP3)
    for key, (support, tids) in EXPECTED_SUP3.items():
        pattern = result.get(key)
        assert pattern.support == support
        assert pattern.tids == tids


def test_golden_partminer_matches():
    result = PartMiner(k=2, unit_support="exact").mine(golden_db(), 3)
    assert result.patterns.keys() == set(EXPECTED_SUP3)


def test_golden_support4():
    """Only (B)-y-(C) survives at support 4."""
    result = GSpanMiner().mine(golden_db(), 4)
    assert result.keys() == {canonical_code(BC)}


def test_golden_support2_adds_the_star_and_az():
    """At support 2, G1's (A)-x-(B)-x-(A) star piece appears (G1 + G2?
    no — only G1 has two A-x-B edges; but (A)-x-(B)-y-(C) subpatterns and
    the z-edge stay below threshold).  Worked out by hand: the additions
    relative to support 3 are exactly none for size >= 2 with support 2
    except... every pattern of EXPECTED_SUP3 plus nothing else reaches 2
    only if it occurs in two graphs: the star A-B-A occurs only in G1
    (support 1), the z-edge only in G2 (support 1)."""
    result = GSpanMiner().mine(golden_db(), 2)
    assert result.keys() == set(EXPECTED_SUP3)


def test_golden_closed_and_maximal():
    patterns = GSpanMiner().mine(golden_db(), 3)
    closed = closed_patterns(patterns)
    maximal = maximal_patterns(patterns)
    # (A)-x-(B) has support 3 == support of its supergraph ABC -> not
    # closed; (B)-y-(C) has support 4 > 3 -> closed; ABC -> closed+maximal.
    assert closed.keys() == {
        canonical_code(BC), canonical_code(ABC)
    }
    assert maximal.keys() == {canonical_code(ABC)}


def test_golden_induced_mining():
    """Induced semantics at support 3, by hand:

    vertices: (A) in G0,G1,G2 -> 3; (B) in all -> 4; (C) in all -> 4.
    edges (induced == plain for 2-vertex patterns on these graphs):
      (A)-x-(B) -> 3;  (B)-y-(C) -> 4.
    (A)-x-(B)-y-(C) as INDUCED 3-vertex pattern: in G0 yes, in G1 yes
    (vertices 0,1,2 — vertex 3 not selected), in G2 NO (the z-edge closes
    the triangle).  -> support 2, excluded at threshold 3.
    """
    result = AGMMiner().mine(golden_db(), 3)
    single_a = LabeledGraph()
    single_a.add_vertex("A")
    single_b = LabeledGraph()
    single_b.add_vertex("B")
    single_c = LabeledGraph()
    single_c.add_vertex("C")
    expected = {
        induced_pattern_key(single_a),
        induced_pattern_key(single_b),
        induced_pattern_key(single_c),
        induced_pattern_key(AB),
        induced_pattern_key(BC),
    }
    assert result.keys() == expected
    abc = result.get(induced_pattern_key(ABC))
    assert abc is None  # induced support only 2


def test_golden_induced_at_support2_includes_the_path():
    result = AGMMiner().mine(golden_db(), 2)
    assert induced_pattern_key(ABC) in result.keys()
    assert result.get(induced_pattern_key(ABC)).tids == {0, 1}

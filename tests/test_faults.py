"""Tests for the deterministic fault-injection registry (repro.resilience.faults)."""

import pytest

from repro.resilience import faults
from repro.resilience.faults import FaultPlan, InjectedFault, flip_bit, truncate


class TestSiteRegistry:
    def test_known_sites_registered(self):
        sites = faults.registered_sites()
        for expected in (
            "artifact.write",
            "artifact.read",
            "graph.parse",
            "runtime.worker_start",
            "runtime.fallback",
            "serve.request",
            "serve.reload",
            "journal.replay",
            "cli.run",
        ):
            assert expected in sites, f"site {expected} not registered"
        # Every site carries a human-readable description.
        assert all(isinstance(d, str) and d for d in sites.values())

    def test_register_returns_name(self):
        assert faults.register_site("test.site", "a test site") == "test.site"


class TestCorruptions:
    def test_flip_bit_changes_exactly_one_bit(self):
        import random

        data = bytes(range(64))
        mutated = flip_bit(data, random.Random(3))
        assert len(mutated) == len(data)
        diff = [a ^ b for a, b in zip(data, mutated) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1

    def test_flip_bit_on_empty(self):
        import random

        assert flip_bit(b"", random.Random(0)) == b"\xff"

    def test_truncate_shortens(self):
        import random

        data = b"x" * 100
        assert len(truncate(data, random.Random(1))) < 100

    def test_same_seed_same_corruption(self):
        data = b"deterministic chaos" * 10
        outs = set()
        for _ in range(3):
            plan = FaultPlan(seed=42)
            plan.inject("artifact.write", corrupt="flip")
            with plan.active():
                outs.add(faults.mangle("artifact.write", data))
        assert len(outs) == 1
        assert outs.pop() != data


class TestFaultPlan:
    def test_fire_raises_armed_exception(self):
        plan = FaultPlan().inject("a.site", OSError("disk on fire"))
        with plan.active():
            with pytest.raises(OSError, match="disk on fire"):
                faults.fire("a.site")
        assert [f.site for f in plan.fired] == ["a.site"]

    def test_default_exception_is_injected_fault(self):
        plan = FaultPlan().inject("a.site")
        with plan.active(), pytest.raises(InjectedFault):
            faults.fire("a.site")

    def test_exception_class_is_instantiated(self):
        plan = FaultPlan().inject("a.site", ConnectionError)
        with plan.active(), pytest.raises(ConnectionError):
            faults.fire("a.site")

    def test_times_bounds_firings(self):
        plan = FaultPlan().inject("a.site", times=2)
        with plan.active():
            for _ in range(2):
                with pytest.raises(InjectedFault):
                    faults.fire("a.site")
            faults.fire("a.site")  # third call passes: arm exhausted
        assert len(plan.fired) == 2

    def test_unarmed_sites_untouched(self):
        plan = FaultPlan().inject("a.site")
        with plan.active():
            faults.fire("other.site")
            assert faults.mangle("other.site", b"data") == b"data"
        assert plan.fired == []

    def test_noop_without_active_plan(self):
        faults.fire("a.site")
        assert faults.mangle("a.site", b"data") == b"data"

    def test_active_restores_previous_plan(self):
        outer = FaultPlan()
        inner = FaultPlan()
        with outer.active():
            with inner.active():
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_probability_is_seeded(self):
        def firings(seed):
            plan = FaultPlan(seed=seed)
            plan.inject("a.site", times=1000, probability=0.5)
            count = 0
            with plan.active():
                for _ in range(100):
                    try:
                        faults.fire("a.site")
                        count += 0
                    except InjectedFault:
                        count += 1
            return count

        assert firings(7) == firings(7)
        assert 10 < firings(7) < 90

    def test_mangle_context_recorded(self):
        plan = FaultPlan().inject("a.site", corrupt="truncate")
        with plan.active():
            faults.mangle("a.site", b"0123456789", path="x.json")
        assert plan.fired[0].kind == "corrupt"
        assert plan.fired[0].context == {"path": "x.json"}

    def test_custom_corruption_callable(self):
        plan = FaultPlan().inject(
            "a.site", corrupt=lambda data, rng: b"REPLACED"
        )
        with plan.active():
            assert faults.mangle("a.site", b"original") == b"REPLACED"
        assert plan.fired[0].detail == "custom"

"""The shared support cache: reuse, invalidation, and lifecycle.

The cache's promise (see :mod:`repro.perf.cache`) is that it may be shared
across merge levels, across whole re-mines, and across update batches —
and still never serve a stale verdict.  These tests exercise exactly the
sharing patterns the miners use, comparing against cache-free runs.
"""

import gc

from hypothesis import given, settings, strategies as st

from repro import perf
from repro.core.incremental import IncrementalPartMiner
from repro.core.partminer import PartMiner
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import LabeledGraph
from repro.updates.generator import UpdateGenerator

from .test_properties import connected_graphs, databases


def path_graph(labels, elabel=0):
    graph = LabeledGraph()
    for label in labels:
        graph.add_vertex(label)
    for v in range(1, len(labels)):
        graph.add_edge(v - 1, v, elabel)
    return graph


def pattern_maps(patterns):
    return {p.key: (p.support, p.tids) for p in patterns}


# ----------------------------------------------------------------------
# Unit behaviour
# ----------------------------------------------------------------------
class TestSupportCacheUnit:
    def test_version_bump_invalidates(self):
        cache = perf.SupportCache()
        graph = path_graph([0, 1, 2])
        cache.put(("k",), graph, True)
        assert cache.get(("k",), graph) is True
        graph.set_vertex_label(0, 9)  # bumps graph.version
        assert cache.get(("k",), graph) is None
        assert cache.invalidated == 1
        cache.put(("k",), graph, False)
        assert cache.get(("k",), graph) is False

    def test_induced_and_plain_verdicts_are_distinct(self):
        cache = perf.SupportCache()
        graph = path_graph([0, 1])
        cache.put(("k",), graph, True, induced=False)
        assert cache.get(("k",), graph, induced=True) is None
        cache.put(("k",), graph, False, induced=True)
        assert cache.get(("k",), graph, induced=False) is True
        assert cache.get(("k",), graph, induced=True) is False

    def test_dead_graphs_release_entries(self):
        cache = perf.SupportCache()
        graph = path_graph([0, 1, 2])
        cache.put(("k",), graph, True)
        assert cache.entries() == 1
        del graph
        gc.collect()
        assert cache.entries() == 0

    def test_stats_digest(self):
        cache = perf.SupportCache()
        graph = path_graph([0, 1])
        cache.put(("k",), graph, True)
        cache.get(("k",), graph)
        cache.get(("other",), graph)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["stores"] == 1
        assert stats["entries"] == 1
        assert stats["approx_bytes"] > 0
        assert stats["hit_rate"] == 0.5

    def test_clear(self):
        cache = perf.SupportCache()
        graph = path_graph([0, 1])
        cache.put(("k",), graph, True)
        cache.clear()
        assert cache.entries() == 0
        assert cache.get(("k",), graph) is None


# ----------------------------------------------------------------------
# Cross-run reuse
# ----------------------------------------------------------------------
class TestCrossRunReuse:
    @settings(max_examples=8, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5))
    def test_repeated_mine_shares_verdicts(self, db):
        cache = perf.SupportCache()
        miner = PartMiner(k=2, unit_support="exact", support_cache=cache)
        first = miner.mine(db, 2).patterns
        hits_after_first = cache.hits
        second = miner.mine(db, 2).patterns
        assert pattern_maps(first) == pattern_maps(second)
        # Nothing changed between runs, so the second run's merge levels
        # found their verdicts memoized whenever the first run tested any.
        if cache.misses > 0:
            assert cache.hits > hits_after_first

    @settings(max_examples=6, deadline=None)
    @given(
        databases(max_graphs=7, max_vertices=5),
        st.integers(0, 2 ** 31),
        st.integers(1, 2),
    )
    def test_incremental_reuse_stays_correct_after_updates(
        self, db, seed, batches
    ):
        """The long-lived cache never corrupts an incremental session.

        The accelerated session shares one cache across the initial mine
        and every re-merge; the baseline session runs with the layer
        disabled.  After every batch — whose in-place mutations bump graph
        versions and whose re-partitions replace piece instances — the
        pattern sets must match exactly.
        """
        accel = IncrementalPartMiner(k=2, max_size=4)
        accel.initial_mine(db, 2)
        with perf.disabled():
            baseline = IncrementalPartMiner(k=2, max_size=4)
            baseline.initial_mine(db, 2)
        assert pattern_maps(accel.current_patterns) == pattern_maps(
            baseline.current_patterns
        )
        generator = UpdateGenerator(
            num_vertex_labels=4, num_edge_labels=2, seed=seed
        )
        for _ in range(batches):
            updates = generator.generate(
                accel.database, accel.ufreq, fraction_graphs=0.5,
                ops_per_graph=2,
            )
            got = accel.apply_updates(updates)
            with perf.disabled():
                want = baseline.apply_updates(updates)
            assert pattern_maps(got.patterns) == pattern_maps(want.patterns)

    def test_explicit_cache_is_used_and_survives(self):
        db = GraphDatabase.from_graphs(
            [path_graph([0, 1, 2, 1]) for _ in range(4)]
            + [path_graph([0, 2, 2]) for _ in range(3)]
        )
        cache = perf.SupportCache()
        miner = IncrementalPartMiner(k=2, support_cache=cache)
        result = miner.initial_mine(db, 2)
        assert miner.support_cache is cache
        assert result.support_cache is cache
        assert cache.stores > 0

    def test_mine_telemetry_carries_perf_digest(self):
        db = GraphDatabase.from_graphs(
            [path_graph([0, 1, 2]) for _ in range(4)]
        )
        result = PartMiner(k=2, parallel_units=True).mine(db, 2)
        assert result.telemetry is not None
        digest = result.telemetry.perf
        assert "support_cache" in digest
        assert "counters" in digest
        assert digest["support_cache"]["stores"] >= 0
        roundtrip = type(result.telemetry).from_dict(
            result.telemetry.to_dict()
        )
        assert roundtrip.perf == digest


# ----------------------------------------------------------------------
# Cache + matcher agreement under mutation
# ----------------------------------------------------------------------
class TestMutationSafety:
    @settings(max_examples=30, deadline=None)
    @given(
        connected_graphs(max_vertices=6),
        connected_graphs(max_vertices=4),
        st.integers(0, 3),
    )
    def test_cached_verdict_tracks_mutations(self, target, pattern, label):
        from repro.graph.canonical import canonical_code
        from repro.graph.isomorphism import subgraph_exists_reference

        cache = perf.SupportCache()
        key = canonical_code(pattern)
        cache.put(key, target, subgraph_exists_reference(pattern, target))
        target.set_vertex_label(0, 90 + label)
        verdict = cache.get(key, target)
        if verdict is not None:  # fresh entries only
            assert verdict == subgraph_exists_reference(pattern, target)
        else:
            assert cache.invalidated == 1


# ----------------------------------------------------------------------
# Accel-state token: mode flips must never serve stale verdicts
# ----------------------------------------------------------------------
class TestAccelTokenInvalidation:
    """Entries are stamped with the accel-state token as well as the
    graph version (the regression: a verdict computed by one matcher
    implementation surviving a mid-process ``--no-accel``/``--no-flat``
    flip and being served as if the other matcher had produced it)."""

    def test_flat_toggle_invalidates_entries(self):
        cache = perf.SupportCache()
        graph = path_graph([0, 1, 2])
        cache.put(("k",), graph, True)
        assert cache.get(("k",), graph) is True
        with perf.flat_disabled():
            # Inside the flipped mode the old-epoch entry is dead...
            assert cache.get(("k",), graph) is None
        # ...and stays dead after restoring (the token is monotonic:
        # there is no way back into a previous epoch).
        assert cache.get(("k",), graph) is None

    def test_accel_toggle_invalidates_entries(self):
        cache = perf.SupportCache()
        graph = path_graph([0, 1, 2])
        cache.put(("k",), graph, False)
        with perf.disabled():
            assert cache.get(("k",), graph) is None
        assert cache.get(("k",), graph) is None

    def test_entries_written_inside_a_mode_die_with_it(self):
        cache = perf.SupportCache()
        graph = path_graph([0, 1])
        with perf.flat_disabled():
            cache.put(("k",), graph, True)
            assert cache.get(("k",), graph) is True
        assert cache.get(("k",), graph) is None

    def test_stable_mode_keeps_entries(self):
        cache = perf.SupportCache()
        graph = path_graph([0, 1])
        cache.put(("k",), graph, True)
        assert cache.get(("k",), graph) is True  # no flip, no invalidation
        assert cache.get(("k",), graph) is True

    def test_shared_cache_across_modes_stays_correct(self):
        """End-to-end regression: one long-lived cache carried across
        runs in different accel modes must not corrupt any of them."""
        db = GraphDatabase.from_graphs(
            [path_graph([0, 1, 2]), path_graph([0, 1, 2]),
             path_graph([1, 2, 0])]
        )
        cache = perf.SupportCache()
        miner = PartMiner(k=2, unit_support="exact", support_cache=cache)
        flat_run = miner.mine(db, 2).patterns
        with perf.flat_disabled():
            plans_run = miner.mine(db, 2).patterns
        with perf.disabled():
            off_run = miner.mine(db, 2).patterns
        final_run = miner.mine(db, 2).patterns
        assert pattern_maps(flat_run) == pattern_maps(plans_run)
        assert pattern_maps(flat_run) == pattern_maps(off_run)
        assert pattern_maps(flat_run) == pattern_maps(final_run)

"""Unit tests for GraphDatabase."""

import pytest

from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import LabeledGraph

from .conftest import make_graph, path_graph, triangle


class TestConstruction:
    def test_from_graphs_assigns_sequential_gids(self):
        db = GraphDatabase.from_graphs([triangle(), path_graph(3)])
        assert db.gids() == [0, 1]
        assert db[0].num_edges == 3
        assert db[1].num_edges == 2

    def test_duplicate_gid_rejected(self):
        db = GraphDatabase([(5, triangle())])
        with pytest.raises(ValueError, match="duplicate"):
            db.add(5, path_graph(2))

    def test_add_graphs_bulk_insert(self):
        db = GraphDatabase([(0, triangle())])
        inserted = db.add_graphs(
            [(5, path_graph(2)), (3, path_graph(3))]
        )
        assert inserted == 2
        assert db.gids() == [0, 5, 3]
        assert db[3].num_edges == 2

    def test_add_graphs_duplicate_against_stored_is_atomic(self):
        db = GraphDatabase([(1, triangle())])
        with pytest.raises(ValueError, match="duplicate graph id 1"):
            db.add_graphs([(2, path_graph(2)), (1, path_graph(3))])
        # Nothing from the failed batch landed.
        assert db.gids() == [1]

    def test_add_graphs_duplicate_within_batch_rejected(self):
        db = GraphDatabase()
        with pytest.raises(ValueError, match="duplicate graph id 4"):
            db.add_graphs([(4, triangle()), (4, path_graph(2))])
        assert len(db) == 0

    def test_add_graphs_empty_batch(self):
        db = GraphDatabase()
        assert db.add_graphs([]) == 0

    def test_from_graphs_routes_through_bulk_path(self):
        db = GraphDatabase.from_graphs(
            [triangle(), path_graph(2), path_graph(4)]
        )
        assert db.gids() == [0, 1, 2]

    def test_replace_requires_existing(self):
        db = GraphDatabase()
        with pytest.raises(KeyError):
            db.replace(0, triangle())
        db.add(0, triangle())
        db.replace(0, path_graph(2))
        assert db[0].num_edges == 1

    def test_deep_copy_is_independent(self):
        db = GraphDatabase.from_graphs([path_graph(3)])
        clone = db.copy(deep=True)
        clone[0].set_vertex_label(0, 99)
        assert db[0].vertex_label(0) == 0

    def test_shallow_copy_shares_graphs(self):
        db = GraphDatabase.from_graphs([path_graph(3)])
        clone = db.copy(deep=False)
        clone[0].set_vertex_label(0, 99)
        assert db[0].vertex_label(0) == 99


class TestAccess:
    def test_len_and_contains(self):
        db = GraphDatabase.from_graphs([triangle(), triangle()])
        assert len(db) == 2
        assert 1 in db
        assert 7 not in db

    def test_iteration_yields_pairs(self):
        db = GraphDatabase.from_graphs([triangle()])
        pairs = list(db)
        assert pairs[0][0] == 0
        assert pairs[0][1].num_edges == 3


class TestStatistics:
    def test_totals_and_average(self):
        db = GraphDatabase.from_graphs([triangle(), path_graph(3)])
        assert db.total_edges() == 5
        assert db.total_vertices() == 6
        assert db.average_size() == 2.5

    def test_average_size_empty(self):
        assert GraphDatabase().average_size() == 0.0

    def test_vertex_label_support_counts_graphs_not_occurrences(self):
        g = make_graph([7, 7, 8], [(0, 1, 0), (1, 2, 0)])
        db = GraphDatabase.from_graphs([g, triangle()])
        support = db.vertex_label_support()
        assert support[7] == 1  # label 7 appears twice but in one graph
        assert support[0] == 1
        assert support[8] == 1

    def test_edge_triple_support_normalizes_orientation(self):
        g1 = make_graph([1, 2], [(0, 1, 5)])
        g2 = make_graph([2, 1], [(0, 1, 5)])
        db = GraphDatabase.from_graphs([g1, g2])
        support = db.edge_triple_support()
        assert support == {(1, 5, 2): 2}

    def test_filter(self):
        db = GraphDatabase.from_graphs([triangle(), path_graph(2)])
        big = db.filter(lambda gid, g: g.num_edges >= 2)
        assert len(big) == 1
        assert 0 in big


class TestAbsoluteSupport:
    def test_fraction(self):
        db = GraphDatabase.from_graphs([triangle()] * 10)
        assert db.absolute_support(0.25) == 3  # ceil(2.5)
        assert db.absolute_support(1.0) == 10

    def test_absolute_count_passthrough(self):
        db = GraphDatabase.from_graphs([triangle()] * 10)
        assert db.absolute_support(4) == 4
        assert db.absolute_support(7.0) == 7

    def test_minimum_is_one(self):
        db = GraphDatabase.from_graphs([triangle()] * 3)
        assert db.absolute_support(0.0001) == 1

    def test_nonpositive_rejected(self):
        db = GraphDatabase.from_graphs([triangle()])
        with pytest.raises(ValueError):
            db.absolute_support(0)
        with pytest.raises(ValueError):
            db.absolute_support(-2)

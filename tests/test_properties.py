"""Property-based tests (hypothesis) for the core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.join import SupportCounter
from repro.core.partminer import PartMiner
from repro.graph import io
from repro.graph.canonical import canonical_code, min_dfs_code
from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import (
    are_isomorphic,
    count_support,
    subgraph_exists,
)
from repro.graph.labeled_graph import LabeledGraph
from repro.mining.bruteforce import BruteForceMiner
from repro.mining.gaston import GastonMiner
from repro.mining.gspan import GSpanMiner
from repro.partition.graphpart import build_bipartition

from .conftest import permuted_copy


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def connected_graphs(draw, max_vertices=7, vlabels=3, elabels=2):
    """Random connected labeled graph: spanning tree + optional chords."""
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    graph = LabeledGraph()
    for _ in range(n):
        graph.add_vertex(draw(st.integers(0, vlabels - 1)))
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        graph.add_edge(v, parent, draw(st.integers(0, elabels - 1)))
    extra = draw(st.integers(0, 3))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, draw(st.integers(0, elabels - 1)))
    return graph


@st.composite
def databases(draw, max_graphs=8, max_vertices=6):
    count = draw(st.integers(2, max_graphs))
    return GraphDatabase.from_graphs(
        draw(connected_graphs(max_vertices=max_vertices))
        for _ in range(count)
    )


@st.composite
def graph_with_permutation(draw, max_vertices=7):
    graph = draw(connected_graphs(max_vertices=max_vertices))
    perm = draw(st.permutations(range(graph.num_vertices)))
    return graph, list(perm)


# ----------------------------------------------------------------------
# Canonical form invariants
# ----------------------------------------------------------------------
class TestCanonicalProperties:
    @settings(max_examples=60, deadline=None)
    @given(graph_with_permutation())
    def test_canonical_code_permutation_invariant(self, data):
        graph, perm = data
        assert canonical_code(permuted_copy(graph, perm)) == canonical_code(
            graph
        )

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs())
    def test_min_code_rebuilds_isomorphic_graph(self, graph):
        rebuilt = min_dfs_code(graph).to_graph()
        assert are_isomorphic(graph, rebuilt)

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs(max_vertices=6), connected_graphs(max_vertices=6))
    def test_code_equality_iff_isomorphism(self, g1, g2):
        same_code = canonical_code(g1) == canonical_code(g2)
        assert same_code == are_isomorphic(g1, g2)

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs())
    def test_rightmost_path_is_root_to_rightmost(self, graph):
        code = min_dfs_code(graph)
        path = code.rightmost_path()
        assert path[0] == 0
        forward_targets = [j for i, j, *_ in code.edges if i < j]
        assert path[-1] == max(forward_targets)


# ----------------------------------------------------------------------
# Isomorphism invariants
# ----------------------------------------------------------------------
class TestIsomorphismProperties:
    @settings(max_examples=40, deadline=None)
    @given(connected_graphs())
    def test_subgraph_reflexive(self, graph):
        assert subgraph_exists(graph, graph)

    @settings(max_examples=40, deadline=None)
    @given(connected_graphs(), st.randoms(use_true_random=False))
    def test_edge_subset_is_subgraph(self, graph, rng):
        edges = list(graph.edges())
        if len(edges) < 2:
            return
        keep = rng.sample(edges, rng.randint(1, len(edges) - 1))
        sub = graph.edge_subgraph((u, v) for u, v, _ in keep)
        for component in sub.connected_components():
            piece = sub.induced_subgraph(component)
            if piece.num_edges:
                assert subgraph_exists(piece, graph)

    @settings(max_examples=30, deadline=None)
    @given(graph_with_permutation())
    def test_isomorphism_symmetric(self, data):
        graph, perm = data
        clone = permuted_copy(graph, perm)
        assert are_isomorphic(graph, clone)
        assert are_isomorphic(clone, graph)


# ----------------------------------------------------------------------
# Mining invariants
# ----------------------------------------------------------------------
class TestMiningProperties:
    @settings(max_examples=15, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5), st.integers(2, 3))
    def test_gspan_equals_bruteforce(self, db, sup):
        got = GSpanMiner().mine(db, sup)
        want = BruteForceMiner().mine(db, sup)
        assert got.keys() == want.keys()
        for p in got:
            assert p.tids == want.get(p.key).tids

    @settings(max_examples=15, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5), st.integers(2, 3))
    def test_gaston_equals_gspan(self, db, sup):
        assert (
            GastonMiner().mine(db, sup).keys()
            == GSpanMiner().mine(db, sup).keys()
        )

    @settings(max_examples=15, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5))
    def test_support_antimonotone_in_threshold(self, db):
        low = GSpanMiner().mine(db, 2)
        high = GSpanMiner().mine(db, 3)
        assert high.keys() <= low.keys()

    @settings(max_examples=10, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5))
    def test_apriori_property(self, db):
        """Theorem 2: subgraphs of frequent graphs are frequent."""
        result = GSpanMiner().mine(db, 2)
        keys = result.keys()
        for p in result:
            for u, v, _ in list(p.graph.edges()):
                work = p.graph.copy()
                work.remove_edge(u, v)
                keep = [w for w in work.vertices() if work.degree(w) > 0]
                sub = work.induced_subgraph(keep)
                if sub.num_edges and sub.is_connected():
                    assert canonical_code(sub) in keys

    @settings(max_examples=12, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5), connected_graphs(max_vertices=4))
    def test_support_counter_matches_direct_count(self, db, pattern):
        counter = SupportCounter(db)
        got_support, got_tids = counter.count(pattern)
        want_support, want_tids = count_support(pattern, db)
        assert (got_support, got_tids) == (want_support, want_tids)


# ----------------------------------------------------------------------
# Partitioning invariants
# ----------------------------------------------------------------------
class TestPartitionProperties:
    @settings(max_examples=40, deadline=None)
    @given(connected_graphs(), st.randoms(use_true_random=False))
    def test_bipartition_edge_union_recovers_graph(self, graph, rng):
        n = graph.num_vertices
        subset = {
            v for v in range(n) if rng.random() < 0.5
        } or {0}
        if len(subset) == n:
            subset.discard(n - 1)
        bipart = build_bipartition(graph, subset, [0.0] * n)
        recovered = set()
        for side in (bipart.side0, bipart.side1):
            for u, v, label in side.graph.edges():
                ou, ov = side.to_original(u), side.to_original(v)
                recovered.add((min(ou, ov), max(ou, ov), label))
        assert recovered == {
            (min(u, v), max(u, v), label) for u, v, label in graph.edges()
        }

    @settings(max_examples=8, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5), st.integers(2, 4))
    def test_partminer_exact_equals_gspan(self, db, k):
        """Theorem 3: lossless recovery from the k units."""
        truth = GSpanMiner().mine(db, 2)
        result = PartMiner(k=k, unit_support="exact").mine(db, 2)
        assert result.patterns.keys() == truth.keys()

    @settings(max_examples=10, deadline=None)
    @given(databases(max_graphs=8, max_vertices=6))
    def test_partminer_paper_mode_sound(self, db):
        """Paper-threshold mode never reports false positives."""
        truth = GSpanMiner().mine(db, 3)
        result = PartMiner(k=2, unit_support="paper").mine(db, 3)
        assert result.patterns.keys() <= truth.keys()


# ----------------------------------------------------------------------
# Serialization invariants
# ----------------------------------------------------------------------
class TestIOProperties:
    @settings(max_examples=30, deadline=None)
    @given(databases())
    def test_text_roundtrip(self, db):
        back = io.loads(io.dumps(db))
        assert len(back) == len(db)
        for gid, graph in db:
            assert sorted(back[gid].edges()) == sorted(graph.edges())
            assert back[gid].vertex_labels() == graph.vertex_labels()

    @settings(max_examples=30, deadline=None)
    @given(databases(max_graphs=4))
    def test_adi_serialization_roundtrip(self, db):
        from repro.mining.adi.index import deserialize_graph, serialize_graph

        for _, graph in db:
            back = deserialize_graph(serialize_graph(graph))
            assert sorted(back.edges()) == sorted(graph.edges())
            assert back.vertex_labels() == graph.vertex_labels()


# ----------------------------------------------------------------------
# Extension invariants
# ----------------------------------------------------------------------
class TestExtensionProperties:
    @settings(max_examples=10, deadline=None)
    @given(
        databases(max_graphs=7, max_vertices=5),
        st.data(),
    )
    def test_selective_remine_equals_full(self, db, data):
        """Selective unit re-mining is exact for arbitrary piece changes."""
        from repro.mining.gaston import GastonMiner
        from repro.mining.incremental_unit import selective_unit_remine

        threshold = data.draw(st.integers(2, 3))
        old = GastonMiner().mine(db, threshold)
        gids = db.gids()
        changed = set(
            data.draw(
                st.lists(
                    st.sampled_from(gids), max_size=len(gids) // 2,
                    unique=True,
                )
            )
        )
        for gid in changed:
            graph = db[gid]
            v = data.draw(st.integers(0, graph.num_vertices - 1))
            graph.set_vertex_label(v, 9)
        got = selective_unit_remine(db, old, changed, threshold)
        want = GastonMiner().mine(db, threshold)
        assert got.keys() == want.keys()
        for p in got:
            assert p.tids == want.get(p.key).tids

    @settings(max_examples=10, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5))
    def test_closed_set_is_lossless(self, db):
        """Every frequent pattern has an equal-support closed witness."""
        from repro.mining.closed import closed_patterns

        patterns = GSpanMiner().mine(db, 2)
        closed = closed_patterns(patterns)
        for p in patterns:
            assert any(
                q.support == p.support
                and q.size >= p.size
                and subgraph_exists(p.graph, q.graph)
                for q in closed
            )

    @settings(max_examples=10, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5))
    def test_maximal_subset_of_closed(self, db):
        from repro.mining.closed import closed_patterns, maximal_patterns

        patterns = GSpanMiner().mine(db, 2)
        assert (
            maximal_patterns(patterns).keys()
            <= closed_patterns(patterns).keys()
        )

    @settings(max_examples=12, deadline=None)
    @given(databases(max_graphs=5, max_vertices=5))
    def test_store_roundtrip_property(self, db):
        import io as iomod

        from repro.mining.store import dump_patterns, load_patterns

        patterns = GSpanMiner().mine(db, 2)
        buffer = iomod.StringIO()
        dump_patterns(patterns, buffer)
        buffer.seek(0)
        back, _ = load_patterns(buffer)
        assert back.keys() == patterns.keys()
        for p in back:
            assert p.tids == patterns.get(p.key).tids

    @settings(max_examples=10, deadline=None)
    @given(connected_graphs(max_vertices=6), connected_graphs(max_vertices=5))
    def test_induced_implies_monomorphic(self, target, pattern):
        assert not subgraph_exists(
            pattern, target, induced=True
        ) or subgraph_exists(pattern, target)


class TestSelectionProperties:
    @settings(max_examples=10, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5), st.integers(1, 8))
    def test_top_k_is_prefix_of_full_ranking(self, db, k):
        from repro.mining.select import mine_top_k

        top = mine_top_k(db, k)
        full = sorted(
            (p.support for p in GSpanMiner().mine(db, 1)), reverse=True
        )
        assert [p.support for p in top] == full[: len(top)]
        assert len(top) == min(k, len(full))

    @settings(max_examples=10, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5), st.integers(1, 4))
    def test_greedy_cover_never_beats_itself(self, db, k):
        """Coverage is monotone in k and selections stay deduplicated."""
        from repro.mining.select import greedy_cover

        patterns = GSpanMiner().mine(db, 2)
        small, covered_small = greedy_cover(patterns, k)
        large, covered_large = greedy_cover(patterns, k + 2)
        assert covered_small <= covered_large
        assert len({p.key for p in large}) == len(large)


class TestConstraintProperties:
    @settings(max_examples=10, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5), st.integers(1, 4))
    def test_max_edges_pushdown_equals_filter(self, db, limit):
        from repro.mining.constraints import ConstrainedMiner, MaxEdges

        constrained = ConstrainedMiner([MaxEdges(limit)]).mine(db, 2)
        reference = {
            p.key
            for p in GSpanMiner().mine(db, 2)
            if p.size <= limit
        }
        assert constrained.keys() == reference

    @settings(max_examples=10, deadline=None)
    @given(databases(max_graphs=6, max_vertices=5))
    def test_acyclic_pushdown_equals_filter(self, db):
        from repro.mining.constraints import Acyclic, ConstrainedMiner

        constrained = ConstrainedMiner([Acyclic()]).mine(db, 2)
        reference = {
            p.key
            for p in GSpanMiner().mine(db, 2)
            if p.graph.num_edges < p.graph.num_vertices
        }
        assert constrained.keys() == reference

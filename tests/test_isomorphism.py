"""Tests for subgraph isomorphism and graph isomorphism."""

import random

import pytest

from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import (
    are_isomorphic,
    count_support,
    find_embeddings,
    subgraph_exists,
)
from repro.graph.labeled_graph import LabeledGraph

from .conftest import (
    make_graph,
    path_graph,
    permuted_copy,
    random_graph,
    star_graph,
    triangle,
)


class TestSubgraphExists:
    def test_edge_in_triangle(self):
        edge = LabeledGraph.single_edge(0, 0, 0)
        assert subgraph_exists(edge, triangle())

    def test_label_mismatch(self):
        edge = LabeledGraph.single_edge(0, 0, 9)
        assert not subgraph_exists(edge, triangle())

    def test_path_in_triangle(self):
        assert subgraph_exists(path_graph(3), triangle())

    def test_triangle_not_in_path(self):
        assert not subgraph_exists(triangle(), path_graph(4))

    def test_monomorphism_semantics_extra_edges_ok(self):
        # A 3-path embeds in a triangle even though the triangle has the
        # closing edge between the path's endpoints (non-induced matching).
        assert subgraph_exists(path_graph(3), triangle())

    def test_star_needs_degree(self):
        assert not subgraph_exists(star_graph(3, leaf_label=0), path_graph(4))

    def test_pattern_bigger_than_target(self):
        assert not subgraph_exists(path_graph(5), path_graph(3))

    def test_edge_label_respected(self):
        target = make_graph([0, 0], [(0, 1, "a")])
        assert subgraph_exists(LabeledGraph.single_edge(0, "a", 0), target)
        assert not subgraph_exists(LabeledGraph.single_edge(0, "b", 0), target)

    def test_self_containment(self):
        g = random_graph(random.Random(4), 7, 3)
        assert subgraph_exists(g, g)


class TestFindEmbeddings:
    def test_embedding_count_of_edge_in_triangle(self):
        edge = LabeledGraph.single_edge(0, 0, 0)
        embeddings = list(find_embeddings(edge, triangle()))
        assert len(embeddings) == 6  # 3 edges x 2 orientations

    def test_limit(self):
        edge = LabeledGraph.single_edge(0, 0, 0)
        assert len(list(find_embeddings(edge, triangle(), limit=2))) == 2

    def test_mappings_are_valid(self):
        pattern = path_graph(3)
        target = triangle()
        for phi in find_embeddings(pattern, target):
            assert len(set(phi.values())) == pattern.num_vertices
            for u, v, label in pattern.edges():
                assert target.has_edge(phi[u], phi[v])
                assert target.edge_label(phi[u], phi[v]) == label

    def test_empty_pattern_yields_one_empty_mapping(self):
        assert list(find_embeddings(LabeledGraph(), triangle())) == [{}]


class TestAreIsomorphic:
    def test_permuted_copies(self):
        rng = random.Random(8)
        for _ in range(20):
            g = random_graph(rng, rng.randrange(2, 8), 2)
            perm = list(range(g.num_vertices))
            rng.shuffle(perm)
            assert are_isomorphic(g, permuted_copy(g, perm))

    def test_different_sizes(self):
        assert not are_isomorphic(path_graph(3), path_graph(4))

    def test_same_counts_different_structure(self):
        # 4 vertices, 3 edges: path vs star.
        p = path_graph(4)
        s = star_graph(3, center_label=0, leaf_label=0)
        assert not are_isomorphic(p, s)

    def test_label_sensitivity(self):
        g1 = triangle(labels=(0, 0, 1))
        g2 = triangle(labels=(0, 1, 1))
        assert not are_isomorphic(g1, g2)


class TestCountSupport:
    def test_counts_graphs_not_embeddings(self):
        db = GraphDatabase.from_graphs([triangle(), triangle(), path_graph(2)])
        edge = LabeledGraph.single_edge(0, 0, 0)
        support, tids = count_support(edge, db)
        assert support == 3
        assert tids == {0, 1, 2}

    def test_candidate_gids_restriction(self):
        db = GraphDatabase.from_graphs([triangle(), triangle()])
        edge = LabeledGraph.single_edge(0, 0, 0)
        support, tids = count_support(edge, db, candidate_gids={1})
        assert support == 1
        assert tids == {1}

    def test_no_support(self):
        db = GraphDatabase.from_graphs([path_graph(3)])
        support, tids = count_support(triangle(), db)
        assert support == 0
        assert tids == set()


class TestAgainstNetworkx:
    """Cross-validate against networkx's VF2 on random instances."""

    def test_random_cross_check(self):
        nx = pytest.importorskip("networkx")
        from networkx.algorithms import isomorphism as nxiso

        def to_nx(g):
            h = nx.Graph()
            for v in g.vertices():
                h.add_node(v, label=g.vertex_label(v))
            for u, v, label in g.edges():
                h.add_edge(u, v, label=label)
            return h

        rng = random.Random(31)
        agreements = 0
        for _ in range(60):
            pattern = random_graph(rng, rng.randrange(2, 5), 1)
            target = random_graph(rng, rng.randrange(3, 8), 3)
            ours = subgraph_exists(pattern, target)
            matcher = nxiso.GraphMatcher(
                to_nx(target),
                to_nx(pattern),
                node_match=lambda a, b: a["label"] == b["label"],
                edge_match=lambda a, b: a["label"] == b["label"],
            )
            theirs = matcher.subgraph_is_monomorphic()
            assert ours == theirs
            agreements += 1
        assert agreements == 60

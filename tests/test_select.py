"""Tests for top-k mining and greedy pattern selection."""

import pytest

from repro.graph.database import GraphDatabase
from repro.mining.base import Pattern, PatternSet
from repro.mining.gspan import GSpanMiner
from repro.mining.select import greedy_cover, mine_top_k

from .conftest import make_graph, path_graph, random_database, triangle


class TestMineTopK:
    def test_returns_k_patterns(self, medium_db):
        top = mine_top_k(medium_db, 5)
        assert len(top) == 5

    def test_ordered_by_support(self, medium_db):
        top = mine_top_k(medium_db, 8)
        supports = [p.support for p in top]
        assert supports == sorted(supports, reverse=True)

    def test_exactness_against_exhaustive(self, medium_db):
        """Top-k supports equal the k best supports of the full set."""
        full = sorted(
            (p.support for p in GSpanMiner().mine(medium_db, 1)),
            reverse=True,
        )
        top = mine_top_k(medium_db, 6)
        assert [p.support for p in top] == full[:6]

    def test_min_size_filter(self, medium_db):
        top = mine_top_k(medium_db, 4, min_size=2)
        assert all(p.size >= 2 for p in top)
        full = sorted(
            (
                p.support
                for p in GSpanMiner().mine(medium_db, 1)
                if p.size >= 2
            ),
            reverse=True,
        )
        assert [p.support for p in top] == full[:4]

    def test_fewer_patterns_than_k(self):
        db = GraphDatabase.from_graphs([triangle()])
        top = mine_top_k(db, 50)
        assert 0 < len(top) <= 50

    def test_empty_database(self):
        assert mine_top_k(GraphDatabase(), 3) == []

    def test_invalid_k(self, medium_db):
        with pytest.raises(ValueError):
            mine_top_k(medium_db, 0)

    def test_deterministic(self, medium_db):
        assert [p.key for p in mine_top_k(medium_db, 5)] == [
            p.key for p in mine_top_k(medium_db, 5)
        ]


class TestGreedyCover:
    def patterns(self):
        return PatternSet(
            [
                Pattern.from_graph(triangle(), [0, 1, 2]),
                Pattern.from_graph(path_graph(3), [2, 3]),
                Pattern.from_graph(path_graph(4), [4]),
                Pattern.from_graph(
                    make_graph([7, 7], [(0, 1, 7)]), [0, 1]
                ),
            ]
        )

    def test_greedy_picks_largest_first(self):
        selected, covered = greedy_cover(self.patterns(), 2)
        assert selected[0].tids == {0, 1, 2}
        # Second pick: path4 and path3 both gain 1; the bigger pattern
        # wins the tie, covering gid 4.
        assert covered == {0, 1, 2, 4}

    def test_full_cover(self):
        selected, covered = greedy_cover(self.patterns(), 4)
        assert covered == {0, 1, 2, 3, 4}
        # The redundant edge pattern ({0,1} subset of {0,1,2}) is skipped.
        assert len(selected) == 3

    def test_k_limits_selection(self):
        selected, covered = greedy_cover(self.patterns(), 1)
        assert len(selected) == 1
        assert covered == {0, 1, 2}

    def test_min_new_graphs_stops_early(self):
        selected, _ = greedy_cover(
            self.patterns(), 10, min_new_graphs=2
        )
        # After the triangle covers {0,1,2}, every remaining pattern
        # gains at most 1 new graph -> stop after a single pick.
        assert len(selected) == 1

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            greedy_cover(self.patterns(), 0)

    def test_on_mined_patterns(self, medium_db):
        mined = GSpanMiner().mine(medium_db, 2)
        selected, covered = greedy_cover(mined, 3)
        assert len(selected) <= 3
        union = set()
        for p in selected:
            union |= p.tids
        assert covered == union

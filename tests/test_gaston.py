"""Tests for the Gaston-style miner."""

import random

from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import count_support
from repro.mining.gaston import GastonMiner, PatternClass, classify
from repro.mining.gspan import GSpanMiner

from .conftest import make_graph, path_graph, random_database, star_graph, triangle


class TestClassify:
    def test_single_edge_is_path(self):
        assert classify(path_graph(2)) is PatternClass.PATH

    def test_long_path(self):
        assert classify(path_graph(6)) is PatternClass.PATH

    def test_star_is_tree(self):
        assert classify(star_graph(3)) is PatternClass.TREE

    def test_triangle_is_cyclic(self):
        assert classify(triangle()) is PatternClass.CYCLIC

    def test_tree_with_long_legs(self):
        g = make_graph(
            [0] * 5, [(0, 1, 0), (1, 2, 0), (1, 3, 0), (3, 4, 0)]
        )
        assert classify(g) is PatternClass.TREE

    def test_square_is_cyclic(self):
        g = make_graph([0] * 4, [(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)])
        assert classify(g) is PatternClass.CYCLIC


class TestAgainstGSpan:
    """Gaston and gSpan must produce identical results."""

    def test_small_db(self, small_db):
        for sup in (1, 2, 3):
            assert (
                GastonMiner().mine(small_db, sup).keys()
                == GSpanMiner().mine(small_db, sup).keys()
            )

    def test_random_dbs_with_tids(self):
        rng = random.Random(66)
        for seed in range(5):
            db = random_database(seed=seed + 100, num_graphs=9, n=7)
            sup = rng.choice([2, 3])
            gaston = GastonMiner().mine(db, sup)
            gspan = GSpanMiner().mine(db, sup)
            assert gaston.keys() == gspan.keys()
            for p in gaston:
                assert p.tids == gspan.get(p.key).tids

    def test_max_size_agreement(self, medium_db):
        assert (
            GastonMiner(max_size=3).mine(medium_db, 3).keys()
            == GSpanMiner(max_size=3).mine(medium_db, 3).keys()
        )


class TestPhases:
    def test_cyclic_patterns_found(self):
        db = GraphDatabase.from_graphs([triangle(), triangle()])
        result = GastonMiner().mine(db, 2)
        assert any(classify(p.graph) is PatternClass.CYCLIC for p in result)

    def test_tree_patterns_found(self):
        db = GraphDatabase.from_graphs([star_graph(3), star_graph(4)])
        result = GastonMiner().mine(db, 2)
        trees = [p for p in result if classify(p.graph) is PatternClass.TREE]
        assert trees  # the 3-star itself

    def test_supports_exact(self, medium_db):
        for p in GastonMiner().mine(medium_db, 3):
            support, tids = count_support(p.graph, medium_db)
            assert (p.support, p.tids) == (support, tids)

    def test_stats_counters(self, medium_db):
        miner = GastonMiner()
        result = miner.mine(medium_db, 3)
        assert miner.stats.patterns_found == len(result)
        assert miner.stats.duplicate_codes_pruned >= 0

"""Tests for the async bounded-queue event sink (repro.obs.sink).

The contract under test: ``emit`` never blocks and never raises, every
event is either written or counted as dropped (no silent loss), a write
failure breaks the sink without touching the emitting thread, and a
cleanly closed file carries a verifiable integrity footer.
"""

from __future__ import annotations

import json
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import EventSink, load_events
from repro.obs.sink import SITE_SINK_WRITE  # noqa: F401  (site exists)
from repro.resilience.errors import ArtifactCorrupt
from repro.resilience.faults import FaultPlan

JSON_VALUES = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(min_value=-(2**31), max_value=2**31)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=8), children, max_size=3),
    max_leaves=8,
)


# ----------------------------------------------------------------------
# Round trip
# ----------------------------------------------------------------------
class TestRoundTrip:
    def test_events_round_trip_with_footer(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = EventSink(path)
        events = [{"event": "e", "i": i} for i in range(10)]
        for event in events:
            assert sink.emit(event)
        stats = sink.close()
        assert stats["dropped_events"] == 0
        assert stats["broken"] is None

        loaded = load_events(path, require=True)
        assert loaded[:-1] == events
        tail = loaded[-1]
        assert tail["event"] == "sink_stats"
        assert tail["written_events"] == stats["written_events"]
        assert len(loaded) == stats["written_events"]

    def test_close_is_idempotent_and_emit_after_close_drops(
        self, tmp_path
    ):
        sink = EventSink(tmp_path / "e.jsonl")
        sink.emit({"a": 1})
        first = sink.close()
        assert not sink.emit({"a": 2})
        second = sink.close()
        assert second["written_events"] == first["written_events"]
        assert second["dropped_events"] == 1

    def test_never_started_sink_flushes_on_close(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = EventSink(path, start=False)
        for i in range(5):
            sink.emit({"i": i})
        stats = sink.close()
        assert stats["written_events"] == 5 + 1  # + sink_stats
        assert [e["i"] for e in load_events(path)[:-1]] == list(range(5))

    @settings(max_examples=30, deadline=None)
    @given(events=st.lists(JSON_VALUES, max_size=10))
    def test_arbitrary_json_payloads_round_trip(
        self, events, tmp_path_factory
    ):
        """Property: anything JSON-representable survives the file."""
        # tmp_path_factory, not tmp_path: hypothesis reuses the fixture
        # across generated examples and each needs a fresh file.
        path = tmp_path_factory.mktemp("sink_prop") / "prop.jsonl"
        sink = EventSink(path, start=False)
        wrapped = [{"payload": e} for e in events]
        for event in wrapped:
            sink.emit(event)
        sink.close()
        loaded = load_events(path, require=True)
        assert loaded[:-1] == wrapped


# ----------------------------------------------------------------------
# Dropping
# ----------------------------------------------------------------------
class TestDropPolicy:
    def test_full_queue_drops_and_counts(self, tmp_path):
        sink = EventSink(tmp_path / "e.jsonl", maxsize=3, start=False)
        results = [sink.emit({"i": i}) for i in range(10)]
        assert results.count(True) == 3
        assert sink.dropped_events == 7
        stats = sink.close()
        assert stats["dropped_events"] == 7
        assert stats["written_events"] == 3 + 1

    def test_dropped_counter_lands_in_registry(self, tmp_path):
        from repro.obs import metrics as obs_metrics

        counter = obs_metrics.registry().counter(
            "repro_obs_dropped_events_total"
        )
        before = counter.value
        sink = EventSink(tmp_path / "e.jsonl", maxsize=1, start=False)
        sink.emit({"i": 0})
        sink.emit({"i": 1})  # dropped
        assert counter.value == before + 1
        sink.close()


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def test_concurrent_emit_hammering(tmp_path):
    """Many threads emit against a live flusher; nothing is lost silently:
    written + dropped equals exactly what was sent, and the file parses
    with a valid footer."""
    path = tmp_path / "hammer.jsonl"
    sink = EventSink(path, maxsize=256, batch=32)
    threads = 8
    per_thread = 500
    barrier = threading.Barrier(threads)

    def worker(tid):
        barrier.wait()
        for i in range(per_thread):
            sink.emit({"tid": tid, "i": i})

    pool = [
        threading.Thread(target=worker, args=(t,)) for t in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    stats = sink.close()

    sent = threads * per_thread
    assert stats["broken"] is None
    # +1: the sink_stats line the seal appends.
    assert stats["written_events"] + stats["dropped_events"] == sent + 1
    events = load_events(path, require=True)
    assert len(events) == stats["written_events"]
    payload = [e for e in events if e.get("event") != "sink_stats"]
    # Per-thread order is preserved even across interleaved batches.
    by_tid: dict[int, list[int]] = {}
    for e in payload:
        by_tid.setdefault(e["tid"], []).append(e["i"])
    for seq in by_tid.values():
        assert seq == sorted(seq)


# ----------------------------------------------------------------------
# Failure behaviour
# ----------------------------------------------------------------------
class TestFailure:
    def test_write_fault_breaks_sink_without_raising(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = EventSink(path, start=False)
        sink.emit({"i": 0})
        plan = FaultPlan(seed=0)
        plan.inject("obs.sink_write", times=1)
        with plan.active():
            stats = sink.close()  # flush happens here; never raises
        assert plan.fired
        assert stats["broken"] is not None
        assert stats["written_events"] == 0
        assert stats["dropped_events"] == 1
        # Broken sink: no footer was sealed.
        with pytest.raises(ArtifactCorrupt):
            load_events(path, require=True)
        assert load_events(path, require=False) == []

    def test_injected_corruption_is_detected_at_read_time(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = EventSink(path, start=False)
        for i in range(4):
            sink.emit({"i": i})
        plan = FaultPlan(seed=1)
        plan.inject("obs.sink_write", corrupt="flip", times=1)
        with plan.active():
            stats = sink.close()
        assert any(f.kind == "corrupt" for f in plan.fired)
        assert stats["broken"] is None  # the write itself "succeeded"
        with pytest.raises(ArtifactCorrupt):
            load_events(path, require=True)

    def test_torn_tail_tolerated_without_footer(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text(
            json.dumps({"i": 0}) + "\n" + '{"i": 1, "trunc',
            encoding="utf-8",
        )
        assert load_events(path, require=False) == [{"i": 0}]
        with pytest.raises(ArtifactCorrupt):
            load_events(path, require=True)

"""Tests for pattern-set persistence."""

import io
import json

import pytest

from repro.mining.gspan import GSpanMiner
from repro.mining.store import (
    dump_patterns,
    load_patterns,
    read_patterns,
    save_patterns,
)

from .conftest import random_database


def mined(seed=800):
    return GSpanMiner().mine(random_database(seed=seed, num_graphs=8), 2)


class TestRoundTrip:
    def test_memory_roundtrip(self):
        patterns = mined()
        buffer = io.StringIO()
        dump_patterns(patterns, buffer, meta={"note": "hi"})
        buffer.seek(0)
        back, meta = load_patterns(buffer)
        assert back.keys() == patterns.keys()
        assert meta == {"note": "hi", "backend": "memory"}
        for p in back:
            original = patterns.get(p.key)
            assert p.tids == original.tids
            assert p.support == original.support

    def test_file_roundtrip(self, tmp_path):
        patterns = mined(801)
        path = tmp_path / "patterns.jsonl"
        save_patterns(patterns, path, meta={"support": 2})
        back, meta = read_patterns(path)
        assert back.keys() == patterns.keys()
        assert meta == {"support": 2, "backend": "memory"}

    def test_string_labels(self, tmp_path):
        from repro.graph.labeled_graph import LabeledGraph
        from repro.mining.base import Pattern, PatternSet

        g = LabeledGraph.from_vertices_and_edges(
            ["C", "O"], [(0, 1, "double")]
        )
        patterns = PatternSet([Pattern.from_graph(g, [0, 4])])
        path = tmp_path / "p.jsonl"
        save_patterns(patterns, path)
        back, _ = read_patterns(path)
        pattern = next(iter(back))
        assert pattern.graph.vertex_labels() == ["C", "O"]
        assert pattern.tids == {0, 4}


class TestValidation:
    def test_empty_file(self):
        with pytest.raises(ValueError, match="empty"):
            load_patterns(iter([]))

    def test_missing_header(self):
        with pytest.raises(ValueError, match="no header"):
            load_patterns(iter(['{"kind": "pattern"}']))

    def test_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            load_patterns(
                iter(['{"kind": "header", "version": 99, "patterns": 0}'])
            )

    def test_count_mismatch(self):
        with pytest.raises(ValueError, match="count mismatch"):
            load_patterns(
                iter(['{"kind": "header", "version": 1, "patterns": 3}'])
            )

    def test_unexpected_record(self):
        lines = [
            '{"kind": "header", "version": 1, "patterns": 0}',
            '{"kind": "mystery"}',
        ]
        with pytest.raises(ValueError, match="unexpected record"):
            load_patterns(iter(lines))

    def test_blank_lines_tolerated(self):
        patterns = mined(802)
        buffer = io.StringIO()
        dump_patterns(patterns, buffer)
        text = buffer.getvalue().replace("\n", "\n\n")
        back, _ = load_patterns(iter(text.splitlines()))
        assert back.keys() == patterns.keys()


class TestSchemaVersion:
    def header(self, patterns):
        buffer = io.StringIO()
        dump_patterns(patterns, buffer)
        return json.loads(buffer.getvalue().splitlines()[0])

    def test_header_carries_schema_version(self):
        from repro.mining.store import SCHEMA_VERSION

        header = self.header(mined(810))
        assert header["schema_version"] == SCHEMA_VERSION

    def test_schema1_file_upgraded_on_load(self):
        # Schema 1: no schema_version header entry, no support field.
        patterns = mined(811)
        buffer = io.StringIO()
        dump_patterns(patterns, buffer)
        lines = []
        for line in buffer.getvalue().splitlines():
            record = json.loads(line)
            record.pop("schema_version", None)
            record.pop("support", None)
            lines.append(json.dumps(record))
        back, _ = load_patterns(iter(lines))
        assert back.keys() == patterns.keys()
        for p in back:
            assert p.support == patterns.get(p.key).support

    def test_newer_schema_rejected(self):
        with pytest.raises(ValueError, match="upgrade the library"):
            load_patterns(
                iter(
                    [
                        '{"kind": "header", "version": 1, '
                        '"schema_version": 99, "patterns": 0}'
                    ]
                )
            )

    def test_invalid_schema_rejected(self):
        with pytest.raises(ValueError, match="schema_version"):
            load_patterns(
                iter(
                    [
                        '{"kind": "header", "version": 1, '
                        '"schema_version": "two", "patterns": 0}'
                    ]
                )
            )

    def test_missing_required_field_named(self):
        lines = [
            '{"kind": "header", "version": 1, "schema_version": 2, '
            '"patterns": 1}',
            '{"kind": "pattern", "vertices": [0, 0], "tids": [0]}',
        ]
        with pytest.raises(ValueError, match="required field 'edges'"):
            load_patterns(iter(lines))

    def test_support_tid_mismatch_rejected(self):
        lines = [
            '{"kind": "header", "version": 1, "schema_version": 2, '
            '"patterns": 1}',
            '{"kind": "pattern", "vertices": [0, 0], '
            '"edges": [[0, 1, 0]], "tids": [0, 1], "support": 7}',
        ]
        with pytest.raises(ValueError, match="corrupt pattern record"):
            load_patterns(iter(lines))

    def test_schema_version_not_leaked_into_meta(self):
        patterns = mined(812)
        buffer = io.StringIO()
        dump_patterns(patterns, buffer, meta={"note": "x"})
        buffer.seek(0)
        _, meta = load_patterns(buffer)
        assert meta == {"note": "x", "backend": "memory"}

    def test_backend_tag_round_trips(self):
        patterns = mined(813)
        buffer = io.StringIO()
        dump_patterns(patterns, buffer, meta={"backend": "sqlite"})
        header = json.loads(buffer.getvalue().splitlines()[0])
        assert header["backend"] == "sqlite"
        buffer.seek(0)
        _, meta = load_patterns(buffer)
        assert meta["backend"] == "sqlite"

    def test_old_schema_upgraded_with_default_backend(self):
        # Pre-schema-3 files carried no backend tag; upgrade-on-load
        # supplies the implicit one.
        lines = [
            '{"kind": "header", "version": 1, "schema_version": 2, '
            '"patterns": 0}',
        ]
        _, meta = load_patterns(iter(lines))
        assert meta["backend"] == "memory"

    def test_newer_schema_rejection_names_path(self):
        lines = [
            '{"kind": "header", "version": 1, "schema_version": 99, '
            '"patterns": 0}',
        ]
        with pytest.raises(ValueError, match="schema_version 99") as exc:
            load_patterns(iter(lines), path="/tmp/some/patterns.jsonl")
        assert "/tmp/some/patterns.jsonl" in str(exc.value)

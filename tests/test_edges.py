"""Tests for frequent 1-edge pattern discovery."""

from repro.graph.database import GraphDatabase
from repro.mining.edges import (
    frequent_edge_patterns,
    frequent_edges,
    normalize_triple,
)

from .conftest import make_graph, triangle


class TestNormalizeTriple:
    def test_orders_vertex_labels(self):
        assert normalize_triple(2, 5, 1) == (1, 5, 2)
        assert normalize_triple(1, 5, 2) == (1, 5, 2)

    def test_equal_labels(self):
        assert normalize_triple(3, 0, 3) == (3, 0, 3)


class TestFrequentEdges:
    def test_support_counts_graphs(self):
        db = GraphDatabase.from_graphs(
            [triangle(), triangle(), make_graph([5, 5], [(0, 1, 9)])]
        )
        result = frequent_edges(db, threshold=2)
        assert len(result) == 1
        assert result[0].triple == (0, 0, 0)
        assert result[0].support == 2
        assert result[0].tids == {0, 1}

    def test_threshold_one_keeps_all(self):
        db = GraphDatabase.from_graphs(
            [triangle(), make_graph([5, 5], [(0, 1, 9)])]
        )
        assert len(frequent_edges(db, 1)) == 2

    def test_sorted_by_triple(self):
        g = make_graph([0, 1, 2], [(0, 1, 0), (1, 2, 0), (0, 2, 0)])
        db = GraphDatabase.from_graphs([g])
        triples = [fe.triple for fe in frequent_edges(db, 1)]
        assert triples == sorted(triples)

    def test_duplicate_edges_in_one_graph_count_once(self):
        g = make_graph([0, 0, 0], [(0, 1, 7), (1, 2, 7)])
        db = GraphDatabase.from_graphs([g])
        result = frequent_edges(db, 1)
        assert result[0].support == 1

    def test_to_graph_and_pattern(self):
        db = GraphDatabase.from_graphs([make_graph([1, 2], [(0, 1, 3)])])
        fe = frequent_edges(db, 1)[0]
        g = fe.to_graph()
        assert g.num_edges == 1
        assert sorted([g.vertex_label(0), g.vertex_label(1)]) == [1, 2]
        p = fe.to_pattern()
        assert p.support == 1
        assert p.size == 1


class TestFrequentEdgePatterns:
    def test_pattern_set_shape(self, small_db):
        ps = frequent_edge_patterns(small_db, 2)
        assert all(p.size == 1 for p in ps)
        # (0)-0-(1) and (1)-1-(1) appear in all three graphs.
        assert len(ps) >= 2
        for p in ps:
            assert p.support >= 2

"""Tests for the r-neighborhood decomposition (repro.biggraph.extract)."""

from __future__ import annotations

import random

import pytest

from repro.biggraph import NeighborhoodExtractor, neighborhood_vertices
from repro.graph.labeled_graph import LabeledGraph

from .conftest import make_graph, random_graph, star_graph


class TestNeighborhoodVertices:
    def test_pivot_first_then_levels_ascending(self):
        # 0-1, 0-3, 1-2: from pivot 0, level 1 = [1, 3], level 2 = [2].
        g = make_graph(
            [0, 0, 0, 0], [(0, 1, 0), (0, 3, 0), (1, 2, 0)]
        )
        assert neighborhood_vertices(g, 0, 0) == [0]
        assert neighborhood_vertices(g, 0, 1) == [0, 1, 3]
        assert neighborhood_vertices(g, 0, 2) == [0, 1, 3, 2]

    def test_saturates_at_component(self):
        g = make_graph([0, 0, 0], [(0, 1, 0)])  # vertex 2 isolated
        assert neighborhood_vertices(g, 0, 5) == [0, 1]
        assert neighborhood_vertices(g, 2, 5) == [2]

    def test_deterministic_pure_function(self):
        rng = random.Random(3)
        g = random_graph(rng, 30, extra_edges=15)
        for pivot in range(0, 30, 7):
            first = neighborhood_vertices(g, pivot, 2)
            assert first == neighborhood_vertices(g, pivot, 2)
            assert first[0] == pivot
            assert len(first) == len(set(first))

    def test_rejects_bad_input(self):
        g = make_graph([0], [])
        with pytest.raises(ValueError, match="pivot"):
            neighborhood_vertices(g, 5, 1)
        with pytest.raises(ValueError, match="radius"):
            neighborhood_vertices(g, 0, -1)


class TestNeighborhoodExtractor:
    def test_gid_is_pivot_and_unit_matches_order(self):
        rng = random.Random(7)
        g = random_graph(rng, 25, extra_edges=10)
        extractor = NeighborhoodExtractor(radius=1)
        db = extractor.extract(g)
        assert sorted(db.gids()) == list(range(25))
        for pivot in (0, 11, 24):
            order = neighborhood_vertices(g, pivot, 1)
            unit = db[pivot]
            assert unit.num_vertices == len(order)
            # local i carries the label of global order[i] — the
            # provenance contract the MNI fold recomputes from.
            for local, global_v in enumerate(order):
                assert unit.vertex_label(local) == g.vertex_label(
                    global_v
                )
            # Edges are exactly the induced ones.
            for lu, lv, elabel in unit.edges():
                assert g.edge_label(order[lu], order[lv]) == elabel

    def test_radius_zero_units_are_single_vertices(self):
        g = star_graph(4)
        db = NeighborhoodExtractor(radius=0).extract(g)
        assert all(unit.num_edges == 0 for _gid, unit in db)
        assert all(unit.num_vertices == 1 for _gid, unit in db)

    def test_pivot_labels_restrict_pivots(self):
        g = star_graph(4, center_label=9, leaf_label=1)
        extractor = NeighborhoodExtractor(
            radius=1, pivot_labels=frozenset({9})
        )
        assert extractor.pivots(g) == [0]
        db = extractor.extract(g)
        assert db.gids() == [0]
        assert db[0].num_edges == 4

    def test_extract_matches_per_pivot_unit(self):
        rng = random.Random(9)
        g = random_graph(rng, 40, extra_edges=20)
        extractor = NeighborhoodExtractor(radius=2)
        db = extractor.extract(g)
        from repro.graph.canonical import canonical_code

        for pivot in (0, 17, 39):
            assert canonical_code(db[pivot]) == canonical_code(
                extractor.unit(g, pivot)
            )

    def test_extract_into_sqlite_round_trips(self, tmp_path):
        from repro.storage import open_backend

        rng = random.Random(5)
        g = random_graph(rng, 30, extra_edges=12)
        extractor = NeighborhoodExtractor(radius=1)
        resident = extractor.extract(g)
        with open_backend("sqlite", tmp_path / "spill.db") as backend:
            spilled = extractor.extract_into(g, backend)
            assert sorted(spilled.gids()) == sorted(resident.gids())
            from repro.graph.io import dumps

            assert dumps(spilled) == dumps(resident)

    def test_stats(self):
        g = star_graph(5)
        stats = NeighborhoodExtractor(radius=1).stats(
            NeighborhoodExtractor(radius=1).extract(g)
        )
        assert stats.pivots == 6
        assert stats.max_edges == 5  # the center's neighborhood
        assert stats.to_dict()["radius"] == 1
        assert stats.avg_edges == pytest.approx(10 / 6)

    def test_rejects_negative_radius(self):
        with pytest.raises(ValueError, match="radius"):
            NeighborhoodExtractor(radius=-1)

"""Tests for the MergeJoin procedure (paper Fig 11)."""

import random

from repro.core.mergejoin import MergeJoinStats, merge_join
from repro.graph.database import GraphDatabase
from repro.mining.base import PatternSet
from repro.mining.bruteforce import BruteForceMiner
from repro.mining.gspan import GSpanMiner
from repro.partition.dbpartition import db_partition

from .conftest import random_database


def mine_units_exact(tree):
    """Mine each unit at support 1 (complete sets, Theorem 1 setting)."""
    miner = BruteForceMiner()
    return [miner.mine(unit.database, 1) for unit in tree.units()]


class TestLosslessRecovery:
    """Theorem 1/3: merge-join recovers the complete frequent set."""

    def test_recovers_gspan_result_k2(self):
        for seed in range(4):
            db = random_database(seed=seed + 200, num_graphs=8, n=6)
            tree = db_partition(db, 2)
            left, right = mine_units_exact(tree)
            for threshold in (2, 3):
                merged = merge_join(db, left, right, threshold)
                want = GSpanMiner().mine(db, threshold)
                assert merged.keys() == want.keys()

    def test_exact_supports_and_tids(self):
        db = random_database(seed=300, num_graphs=8, n=6)
        tree = db_partition(db, 2)
        left, right = mine_units_exact(tree)
        merged = merge_join(db, left, right, 2)
        want = GSpanMiner().mine(db, 2)
        for p in merged:
            q = want.get(p.key)
            assert q is not None
            assert p.support == q.support
            assert p.tids == q.tids

    def test_no_false_positives_even_with_reduced_unit_support(self):
        db = random_database(seed=301, num_graphs=10, n=7)
        tree = db_partition(db, 2)
        miner = GSpanMiner()
        left = miner.mine(tree.units()[0].database, 2)
        right = miner.mine(tree.units()[1].database, 2)
        merged = merge_join(db, left, right, 4)
        want = GSpanMiner().mine(db, 4)
        assert merged.keys() <= want.keys()


class TestStrictPaperJoins:
    def test_strict_is_subset_of_full(self):
        db = random_database(seed=302, num_graphs=8, n=7)
        tree = db_partition(db, 2)
        left, right = mine_units_exact(tree)
        full = merge_join(db, left, right, 2)
        strict = merge_join(db, left, right, 2, strict_paper_joins=True)
        assert strict.keys() <= full.keys()


class TestKnownVouching:
    def test_known_patterns_skip_counting(self):
        db = random_database(seed=303, num_graphs=8, n=6)
        tree = db_partition(db, 2)
        left, right = mine_units_exact(tree)
        baseline = merge_join(db, left, right, 2)
        stats = MergeJoinStats()
        again = merge_join(
            db, left, right, 2, stats=stats, known=baseline
        )
        assert again.keys() == baseline.keys()
        assert stats.known_reused > 0

    def test_vouched_supports_copied(self):
        db = random_database(seed=304, num_graphs=6, n=5)
        tree = db_partition(db, 2)
        left, right = mine_units_exact(tree)
        baseline = merge_join(db, left, right, 2)
        again = merge_join(db, left, right, 2, known=baseline)
        for p in again:
            assert p.tids == baseline.get(p.key).tids


class TestBehaviour:
    def test_max_size_bound(self):
        db = random_database(seed=305, num_graphs=6, n=6)
        tree = db_partition(db, 2)
        left, right = mine_units_exact(tree)
        merged = merge_join(db, left, right, 2, max_size=2)
        assert merged.max_size() <= 2

    def test_empty_children(self):
        db = random_database(seed=306, num_graphs=4, n=5)
        merged = merge_join(db, PatternSet(), PatternSet(), 2)
        # Only the direct 1-edge scan contributes.
        assert all(p.size == 1 for p in merged)

    def test_stats_populated(self):
        db = random_database(seed=307, num_graphs=8, n=6)
        tree = db_partition(db, 2)
        left, right = mine_units_exact(tree)
        stats = MergeJoinStats()
        merge_join(db, left, right, 2, stats=stats)
        assert stats.carried_patterns > 0
        assert stats.rounds > 0
        assert stats.isomorphism_tests > 0

    def test_apriori_pruning_drops_dead_carried(self):
        # Right child contains a pattern with an edge label that is not
        # frequent in the parent: it must be pruned (Fig 11 lines 2-3).
        db = random_database(seed=308, num_graphs=6, n=5)
        tree = db_partition(db, 2)
        left, right = mine_units_exact(tree)
        from repro.graph.labeled_graph import LabeledGraph
        from repro.mining.base import Pattern

        alien = Pattern.from_graph(
            LabeledGraph.from_vertices_and_edges(
                [99, 99, 99], [(0, 1, 99), (1, 2, 99)]
            ),
            tids=(0,),
        )
        right.add(alien)
        stats = MergeJoinStats()
        merged = merge_join(db, left, right, 2, stats=stats)
        assert alien.key not in merged.keys()
        assert stats.carried_pruned >= 1

"""Tests for the update journal."""

import io

import pytest

from repro.updates.generator import UpdateGenerator
from repro.updates.journal import TornJournalWarning, UpdateJournal, replay
from repro.updates.model import (
    AddEdge,
    AddVertex,
    RelabelEdge,
    RelabelVertex,
    apply_updates,
)
from repro.updates.tracker import hot_vertex_assignment

from .conftest import random_database


def sample_batches():
    return [
        [RelabelVertex(0, 1, 9), AddEdge(0, 0, 3, 2)],
        [AddVertex(1, 5, 0, 1), RelabelEdge(1, 0, 1, 7)],
    ]


class TestRoundTrip:
    def test_memory_roundtrip(self):
        journal = UpdateJournal(meta={"dataset": "demo"})
        for batch in sample_batches():
            journal.append(batch)
        buffer = io.StringIO()
        journal.dump(buffer)
        buffer.seek(0)
        back = UpdateJournal.load(buffer)
        assert back.meta == {"dataset": "demo"}
        assert back.batches == journal.batches

    def test_file_roundtrip(self, tmp_path):
        journal = UpdateJournal()
        journal.append(sample_batches()[0])
        path = tmp_path / "updates.jsonl"
        journal.save(path)
        back = UpdateJournal.read(path)
        assert back.batches == journal.batches

    def test_generated_batches_roundtrip(self):
        db = random_database(seed=1200, num_graphs=6)
        ufreq = hot_vertex_assignment(db, 0.3, seed=1)
        generator = UpdateGenerator(5, 5, seed=2)
        journal = UpdateJournal()
        for _ in range(3):
            batch = generator.generate(db, ufreq, 0.5, 2, "mixed")
            journal.append(batch)
            apply_updates(db, batch)
        buffer = io.StringIO()
        journal.dump(buffer)
        buffer.seek(0)
        back = UpdateJournal.load(buffer)
        assert back.batches == journal.batches
        assert len(back) == 3
        assert back.all_updates() == journal.all_updates()


class TestReplay:
    def test_replay_reproduces_database(self):
        original = random_database(seed=1201, num_graphs=6)
        live = original.copy(deep=True)
        ufreq = hot_vertex_assignment(original, 0.3, seed=3)
        generator = UpdateGenerator(5, 5, seed=4)
        journal = UpdateJournal()
        for _ in range(2):
            batch = generator.generate(live, ufreq, 0.5, 2, "mixed")
            journal.append(batch)
            apply_updates(live, batch)

        replayed = original.copy(deep=True)
        touched = replay(journal, replayed)
        for gid in live.gids():
            assert sorted(replayed[gid].edges()) == sorted(live[gid].edges())
            assert replayed[gid].vertex_labels() == live[gid].vertex_labels()
        assert touched  # something was touched

    def test_replay_plus_remine_matches_live_state(self):
        from repro.mining.gspan import GSpanMiner

        original = random_database(seed=1202, num_graphs=8)
        live = original.copy(deep=True)
        generator = UpdateGenerator(5, 5, seed=5)
        ufreq = hot_vertex_assignment(original, 0.3, seed=6)
        journal = UpdateJournal()
        batch = generator.generate(live, ufreq, 0.4, 2, "structural")
        journal.append(batch)
        apply_updates(live, batch)

        replayed = original.copy(deep=True)
        replay(journal, replayed)
        assert (
            GSpanMiner().mine(replayed, 2).keys()
            == GSpanMiner().mine(live, 2).keys()
        )


class TestValidation:
    def test_empty_journal(self):
        with pytest.raises(ValueError, match="empty"):
            UpdateJournal.load(iter([]))

    def test_missing_header(self):
        with pytest.raises(ValueError, match="no header"):
            UpdateJournal.load(iter(['{"kind": "batch"}']))

    def test_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            UpdateJournal.load(
                iter(['{"kind": "header", "version": 9}'])
            )

    def test_out_of_order_batches(self):
        lines = [
            '{"kind": "header", "version": 1}',
            '{"kind": "batch", "index": 3, "updates": []}',
        ]
        with pytest.raises(ValueError, match="out of order"):
            UpdateJournal.load(iter(lines))

    def test_unknown_op(self):
        lines = [
            '{"kind": "header", "version": 1}',
            '{"kind": "batch", "index": 0, '
            '"updates": [{"op": "explode"}]}',
        ]
        with pytest.raises(ValueError, match="unknown update op"):
            UpdateJournal.load(iter(lines))


class TestTornTail:
    """A crash mid-append tears the final record; replay must survive it."""

    def _journal_lines(self):
        journal = UpdateJournal(meta={"dataset": "demo"})
        for batch in sample_batches():
            journal.append(batch)
        buffer = io.StringIO()
        journal.dump(buffer)
        return buffer.getvalue().splitlines()

    def test_torn_final_record_truncated_with_warning(self):
        lines = self._journal_lines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]  # torn mid-write
        with pytest.warns(TornJournalWarning, match="torn record"):
            back = UpdateJournal.load(iter(lines))
        assert back.batches == sample_batches()[:-1]
        assert back.meta == {"dataset": "demo"}

    def test_torn_tail_raise_policy(self):
        lines = self._journal_lines()
        lines[-1] = lines[-1][:10]
        with pytest.raises(ValueError, match="corrupt journal record"):
            UpdateJournal.load(iter(lines), torn_tail="raise")

    def test_mid_file_corruption_always_raises(self):
        lines = self._journal_lines()
        lines[1] = lines[1][:10]  # not the tail: bit rot, not a torn append
        with pytest.raises(ValueError, match="corrupt journal record"):
            UpdateJournal.load(iter(lines))

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="torn_tail"):
            UpdateJournal.load(iter([]), torn_tail="maybe")

    def test_torn_tail_on_disk_roundtrip(self, tmp_path):
        journal = UpdateJournal()
        for batch in sample_batches():
            journal.append(batch)
        path = tmp_path / "updates.jsonl"
        journal.save(path, atomic=False)  # no checksum footer: raw lines
        raw = path.read_text().splitlines()
        path.write_text("\n".join(raw[:-1] + [raw[-1][:12]]) + "\n")
        with pytest.warns(TornJournalWarning):
            back = UpdateJournal.read(path)
        assert back.batches == sample_batches()[:-1]

    def test_replay_after_truncation_applies_complete_batches(self):
        lines = self._journal_lines()
        lines[-1] = lines[-1][: len(lines[-1]) // 2]
        with pytest.warns(TornJournalWarning):
            back = UpdateJournal.load(iter(lines))
        from repro.graph.database import GraphDatabase

        from .conftest import path_graph

        db = GraphDatabase([(0, path_graph(5)), (1, path_graph(5))])
        touched = replay(back, db)
        assert touched  # the surviving batch really was applied
        assert db[0].has_edge(0, 3)

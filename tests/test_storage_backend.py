"""Unit tests for the SQLite storage backend (src/repro/storage).

The contract under test: a :class:`SQLiteBackend` behind
:class:`GraphDatabase` / :class:`PatternCatalog` is *observationally
identical* to the in-memory path — same iteration order, same mined
bytes, same query answers — while holding only a bounded number of
decoded graphs alive.  The differential suite
(test_storage_differential.py) pins the identical-output half; this file
covers the backend's own mechanics: round-trips, the LRU, generations,
quarantine-and-heal, snapshots, and the stored fragment index.
"""

import sqlite3

import pytest

from repro.graph.database import GraphDatabase
from repro.mining.gspan import GSpanMiner
from repro.resilience.errors import ArtifactCorrupt, exit_code_for
from repro.serve.catalog import catalog_order
from repro.serve.index import FragmentIndex, graph_fragments
from repro.storage import (
    BACKEND_NAMES,
    DEFAULT_CACHE_GRAPHS,
    GraphLRU,
    MemoryBackend,
    decode_graph,
    encode_graph,
    open_backend,
    payload_sha,
)
from repro.storage.sqlite import SCHEMA_VERSION, SQLiteBackend

from .conftest import make_graph, random_database, triangle


@pytest.fixture
def backend(tmp_path):
    with open_backend("sqlite", tmp_path / "store.db") as b:
        yield b


def filled(backend, seed=11, num_graphs=8, n=6):
    db = random_database(seed=seed, num_graphs=num_graphs, n=n)
    backend.import_database(db)
    return db


# ----------------------------------------------------------------------
# Factory
# ----------------------------------------------------------------------
class TestOpenBackend:
    def test_names(self):
        assert BACKEND_NAMES == ("memory", "sqlite")

    def test_memory_default(self):
        b = open_backend("memory")
        assert isinstance(b, MemoryBackend)
        assert b.name == "memory"

    def test_sqlite_requires_path(self):
        with pytest.raises(ValueError, match="path"):
            open_backend("sqlite")

    def test_unknown_backend(self, tmp_path):
        with pytest.raises(ValueError, match="nosuch"):
            open_backend("nosuch", tmp_path / "x.db")


# ----------------------------------------------------------------------
# Graph round-trips
# ----------------------------------------------------------------------
class TestGraphRoundTrip:
    def test_encode_decode_is_identity(self):
        g = make_graph([0, 1, 2], [(0, 1, 5), (1, 2, 3), (0, 2, 1)])
        h = decode_graph(encode_graph(g))
        assert h.vertex_labels() == g.vertex_labels()
        for v in g.vertices():
            assert list(h.neighbors(v)) == list(g.neighbors(v))
        # encode(decode(x)) is a fixed point — the incremental-upsert
        # sha comparison depends on it.
        assert encode_graph(h) == encode_graph(g)

    def test_decoded_version_matches_fresh_construction(self):
        g = triangle()
        h = decode_graph(encode_graph(g))
        assert h.version == g.num_vertices + g.num_edges

    def test_import_and_read_back(self, backend):
        db = filled(backend)
        view = backend.database()
        assert view.gids() == db.gids()
        assert len(view) == len(db)
        assert view.total_edges() == db.total_edges()
        assert view.total_vertices() == db.total_vertices()
        for gid, g in db:
            h = view[gid]
            assert h.vertex_labels() == g.vertex_labels()
            for v in g.vertices():
                assert list(h.neighbors(v)) == list(g.neighbors(v))

    def test_reimport_writes_nothing(self, backend):
        db = filled(backend)
        assert backend.import_database(db) == 0

    def test_changed_graph_rewrites_only_that_row(self, backend):
        db = filled(backend)
        g0 = db[0].copy()
        g0.set_vertex_label(0, 9)
        db.replace(0, g0)
        assert backend.import_database(db) == 1

    def test_rewrite_preserves_iteration_order(self, backend):
        db = filled(backend)
        g0 = db[0].copy()
        g0.set_vertex_label(0, 9)
        backend.write_graph(0, g0)
        assert backend.database().gids() == db.gids()

    def test_missing_gid_raises_keyerror(self, backend):
        filled(backend)
        with pytest.raises(KeyError):
            backend.database()[999]

    def test_string_labels_round_trip(self, backend):
        g = make_graph(["C", "O"], [(0, 1, "double")])
        backend.write_graph(0, g)
        h = backend.database()[0]
        assert h.vertex_labels() == ["C", "O"]
        assert h.edge_label(0, 1) == "double"

    def test_subset_view(self, backend):
        db = filled(backend)
        view = backend.database(gids=[2, 0])
        assert view.gids() == [2, 0]
        assert len(view) == 2
        assert 1 not in view
        with pytest.raises(KeyError):
            view[1]
        assert view.total_edges() == (
            db[2].num_edges + db[0].num_edges
        )

    def test_subset_view_rejects_unknown_gid(self, backend):
        filled(backend)
        with pytest.raises(KeyError):
            backend.database(gids=[999])

    def test_subset_view_rejects_writes(self, backend):
        db = filled(backend)
        view = backend.database(gids=[0])
        with pytest.raises(ValueError):
            view.replace(0, db[1])


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
class TestGraphLRU:
    def test_capacity_bound(self):
        lru = GraphLRU(2)
        graphs = [triangle((i, i, i)) for i in range(4)]
        for i, g in enumerate(graphs):
            lru.put(i, g)
        assert len(lru) == 2
        assert lru.get(0) is None and lru.get(3) is graphs[3]
        stats = lru.stats()
        assert stats["evictions"] == 2
        assert stats["max_cached"] == 2

    def test_get_refreshes_recency(self):
        lru = GraphLRU(2)
        a, b, c = (triangle((i, i, i)) for i in range(3))
        lru.put(0, a)
        lru.put(1, b)
        assert lru.get(0) is a  # 0 is now most recent
        lru.put(2, c)  # evicts 1
        assert lru.get(1) is None and lru.get(0) is a

    def test_max_live_counts_external_references(self):
        lru = GraphLRU(1)
        keep = [triangle((i, i, i)) for i in range(3)]
        for i, g in enumerate(keep):
            lru.put(i, g)
        # All three stay alive through our list even though only one is
        # cached: max_live is the honest memory high-water.
        assert lru.stats()["max_live"] == 3
        assert lru.stats()["max_cached"] == 1

    def test_default_capacity(self, tmp_path):
        with open_backend("sqlite", tmp_path / "d.db") as b:
            assert b.cache.capacity == DEFAULT_CACHE_GRAPHS

    def test_backend_cache_hits(self, backend):
        filled(backend)
        view = backend.database()
        view[0]
        before = backend.cache.stats()["hits"]
        view[0]
        assert backend.cache.stats()["hits"] == before + 1


# ----------------------------------------------------------------------
# Generations and state tokens
# ----------------------------------------------------------------------
class TestGeneration:
    def test_every_write_txn_bumps(self, backend):
        db = filled(backend)
        g = backend.generation()
        backend.write_graph(0, db[1])
        assert backend.generation() == g + 1

    def test_noop_write_does_not_bump(self, backend):
        db = filled(backend)
        g = backend.generation()
        backend.write_graph(0, db[0])  # identical bytes: skipped
        assert backend.generation() == g

    def test_state_token_changes_on_write(self, backend):
        db = filled(backend)
        view = backend.database()
        t0 = view.state_token()
        assert t0[0] == "sqlite"
        backend.write_graph(0, db[1])
        assert view.state_token() != t0

    def test_memory_database_has_no_token(self):
        assert GraphDatabase().state_token() is None


# ----------------------------------------------------------------------
# Integrity: schema version, corruption, quarantine, healing
# ----------------------------------------------------------------------
class TestIntegrity:
    def test_newer_schema_rejected_naming_path_and_version(self, tmp_path):
        path = tmp_path / "future.db"
        conn = sqlite3.connect(path)
        conn.execute(f"PRAGMA user_version={SCHEMA_VERSION + 7}")
        conn.close()
        with pytest.raises(
            ArtifactCorrupt, match=str(SCHEMA_VERSION + 7)
        ) as info:
            SQLiteBackend(path)
        assert str(path) in str(info.value)

    def test_corrupt_row_quarantined_and_healed(self, backend, tmp_path):
        db = filled(backend)
        # Flip the stored bytes behind the backend's back.
        backend._conn.execute(
            "UPDATE graphs SET payload=? WHERE gid=3", (b"garbage",)
        )
        with pytest.raises(ArtifactCorrupt) as info:
            backend.database()[3]
        assert exit_code_for(info.value) == 3
        pen = tmp_path / "store.db.corrupt"
        assert info.value.quarantined.exists()
        assert info.value.quarantined.parent == pen
        assert info.value.quarantined.read_bytes() == b"garbage"
        # The row is voided: reads keep failing typed, never garbage.
        with pytest.raises(ArtifactCorrupt):
            backend.database()[3]
        # Healing re-import restores the row at its original position.
        assert backend.import_database(db) == 1
        assert backend.database().gids() == db.gids()
        assert (
            backend.database()[3].vertex_labels() == db[3].vertex_labels()
        )

    def test_undecodable_valid_sha_row_quarantined(self, backend):
        filled(backend)
        # Bytes whose sha matches but whose JSON is not a graph record.
        bad = b'{"not": "a graph"}'
        backend._conn.execute(
            "UPDATE graphs SET payload=?, sha=? WHERE gid=1",
            (bad, payload_sha(bad)),
        )
        with pytest.raises(ArtifactCorrupt, match="undecodable"):
            backend.database()[1]

    def test_read_only_rejects_writes(self, backend, tmp_path):
        db = filled(backend)
        backend.checkpoint()
        ro = SQLiteBackend(tmp_path / "store.db", read_only=True)
        try:
            assert ro.database().gids() == db.gids()
            with pytest.raises(ValueError, match="read-only"):
                ro.write_graph(0, db[0])
            with pytest.raises(ValueError, match="read-only"):
                ro.import_database(db)
        finally:
            ro.close()

    def test_close_is_idempotent(self, tmp_path):
        b = open_backend("sqlite", tmp_path / "c.db")
        b.close()
        b.close()


# ----------------------------------------------------------------------
# Snapshots (catalog facet)
# ----------------------------------------------------------------------
def publish(backend, db, version=1, meta=None):
    patterns = GSpanMiner().mine(db, 3)
    ordered = catalog_order(patterns)
    counters = backend.save_snapshot(
        version, ordered, dict(meta or {}), db
    )
    return patterns, ordered, counters


class TestSnapshots:
    def test_save_load_round_trip(self, backend):
        db = filled(backend)
        patterns, ordered, _ = publish(backend, db, meta={"note": "x"})
        snap = backend.load_snapshot(1)
        assert snap.version == 1
        assert snap.meta == {"note": "x"}
        assert len(snap.entries) == len(ordered)
        for pid, want in enumerate(ordered):
            entry = snap.entries[pid]
            assert entry.support == want.support
            assert entry.size == want.size
            assert entry.key == want.key
            assert entry.tids == want.tids

    def test_missing_snapshot(self, backend):
        with pytest.raises(FileNotFoundError):
            backend.load_snapshot(5)

    def test_snapshot_versions_and_delete(self, backend):
        db = filled(backend)
        publish(backend, db, version=1)
        publish(backend, db, version=2)
        assert backend.snapshot_versions() == [1, 2]
        backend.delete_snapshot(1)
        assert backend.snapshot_versions() == [2]
        with pytest.raises(FileNotFoundError):
            backend.load_snapshot(1)

    def test_incremental_postings_reused_when_unchanged(self, backend):
        db = filled(backend)
        _, _, first = publish(backend, db, version=1)
        assert first["postings_rebuilt"] == len(db)
        _, _, second = publish(backend, db, version=2)
        assert second["postings_reused"] == len(db)
        assert second["postings_rebuilt"] == 0

    def test_incremental_rebuilds_only_drifted_rows(self, backend):
        db = filled(backend)
        publish(backend, db, version=1)
        g0 = db[0].copy()
        g0.set_vertex_label(0, 9)
        backend.write_graph(0, g0)
        _, _, counters = publish(backend, backend.database(), version=2)
        assert counters["postings_rebuilt"] == 1
        assert counters["postings_reused"] == len(db) - 1

    def test_top_k_matches_eager_order(self, backend):
        db = filled(backend)
        _, ordered, _ = publish(backend, db)
        snap = backend.load_snapshot(1)
        for by, keyfn in (
            ("support", lambda i: (-ordered[i].support, i)),
            ("size", lambda i: (-ordered[i].size, i)),
        ):
            want = sorted(range(len(ordered)), key=keyfn)
            for k in (0, 1, 3, len(ordered) + 5):
                got = [e.pid for e in snap.top_k(k, by=by)]
                assert got == want[:k], (by, k)
        with pytest.raises(ValueError):
            snap.top_k(3, by="color")

    def test_top_k_decodes_no_pattern_blobs(self, backend):
        db = filled(backend)
        publish(backend, db)
        snap = backend.load_snapshot(1)
        top = snap.top_k(3)
        assert len(top) == 3
        assert all(e._pattern is None for e in top)

    def test_lookup_canonical(self, backend):
        db = filled(backend)
        _, ordered, _ = publish(backend, db)
        snap = backend.load_snapshot(1)
        for pid, pattern in enumerate(ordered):
            assert [e.pid for e in snap.lookup_canonical(pattern.key)] == [
                pid
            ]
        assert snap.lookup_canonical(("no", "such", "key")) == []

    def test_corrupt_pattern_row_is_typed(self, backend):
        db = filled(backend)
        publish(backend, db)
        backend._conn.execute(
            "UPDATE patterns SET payload=? WHERE version=1 AND pid=0",
            (b"junk",),
        )
        snap = backend.load_snapshot(1)
        with pytest.raises(ArtifactCorrupt) as info:
            snap.entries[0].graph
        assert exit_code_for(info.value) == 3


# ----------------------------------------------------------------------
# Query plans: postings lookups must never degenerate to table scans
# ----------------------------------------------------------------------
class TestPostingsQueryPlans:
    """EXPLAIN the exact production SQL of the fragment-postings index.

    Both candidate queries must resolve through the ``WITHOUT ROWID``
    composite primary keys — a plan step that SCANs a postings table
    means every published snapshot's postings are walked per probe, the
    exact regression the composite PKs exist to prevent.
    """

    def _details(self, backend, sql, params):
        rows = backend._conn.execute(
            "EXPLAIN QUERY PLAN " + sql, params
        ).fetchall()
        return [row[3] for row in rows]

    def test_candidate_queries_search_not_scan(self, backend):
        from repro.storage.sqlite import (
            SQL_CANDIDATE_GRAPHS,
            SQL_CANDIDATE_PATTERNS,
        )

        db = filled(backend)
        publish(backend, db)
        plans = {
            "candidate_patterns": self._details(
                backend,
                SQL_CANDIDATE_PATTERNS.format(placeholders="?,?"),
                (1, 1, 2, 1),
            ),
            "candidate_graphs": self._details(
                backend,
                SQL_CANDIDATE_GRAPHS.format(placeholders="?,?"),
                (1, 1, 2, 2),
            ),
        }
        for name, details in plans.items():
            assert any(
                "USING" in detail for detail in details
            ), (name, details)
            for detail in details:
                assert not detail.startswith("SCAN"), (name, details)


# ----------------------------------------------------------------------
# Stored fragment index vs the eager one
# ----------------------------------------------------------------------
class TestStoredFragmentIndex:
    def test_candidates_match_eager_index(self, backend):
        db = filled(backend)
        patterns, ordered, _ = publish(backend, db)
        stored = backend.load_snapshot(1).index
        eager = FragmentIndex.build(
            (p.graph for p in ordered), db
        )
        assert stored.num_patterns == eager.num_patterns
        assert stored.has_graph_postings and eager.has_graph_postings
        probes = [graph_fragments(g) for _, g in db]
        probes += [graph_fragments(p.graph) for p in ordered]
        probes.append(frozenset())
        probes.append(frozenset({("e", 99, 99, 99)}))
        for fragments in probes:
            assert stored.candidate_patterns(
                fragments
            ) == eager.candidate_patterns(fragments)
            assert stored.candidate_graphs(
                fragments
            ) == eager.candidate_graphs(fragments)

    def test_stale_gids_same_store(self, backend):
        db = filled(backend)
        publish(backend, db)
        view = backend.database()
        stored = backend.load_snapshot(1).index
        assert stored.stale_gids(view) == set()
        g0 = view[0].copy()
        g0.set_vertex_label(0, 9)
        backend.write_graph(0, g0)
        assert stored.stale_gids(view) == {0}

    def test_stale_gids_foreign_database_all_stale(self, backend):
        db = filled(backend)
        publish(backend, db)
        stored = backend.load_snapshot(1).index
        assert stored.stale_gids(db) == set(db.gids())


# ----------------------------------------------------------------------
# Memory backend parity
# ----------------------------------------------------------------------
class TestMemoryBackend:
    def test_import_and_snapshots(self):
        db = random_database(seed=21, num_graphs=4, n=5)
        b = open_backend("memory")
        b.import_database(db)
        assert b.num_graphs() == len(db)
        patterns = GSpanMiner().mine(db, 2)
        b.save_snapshot(1, patterns, {"note": "m"})
        assert b.snapshot_versions() == [1]
        loaded, meta = b.load_snapshot(1)
        assert loaded is patterns
        assert meta == {"note": "m"}

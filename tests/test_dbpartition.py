"""Tests for DBPartition and the partition tree."""

import pytest

from repro.partition.dbpartition import db_partition, split_node
from repro.partition.graphpart import GraphPartitioner

from .conftest import random_database


class TestTreeShape:
    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_unit_count(self, k):
        db = random_database(seed=1, num_graphs=6)
        tree = db_partition(db, k)
        assert len(tree.units()) == k
        assert tree.k == k

    def test_k1_tree_is_root_only(self):
        db = random_database(seed=1, num_graphs=3)
        tree = db_partition(db, 1)
        assert tree.root.is_leaf
        assert tree.units() == [tree.root]

    def test_power_of_two_depths_uniform(self):
        db = random_database(seed=2, num_graphs=4)
        tree = db_partition(db, 4)
        assert {u.depth for u in tree.units()} == {2}

    def test_non_power_of_two_depths(self):
        db = random_database(seed=2, num_graphs=4)
        tree = db_partition(db, 3)
        depths = sorted(u.depth for u in tree.units())
        assert depths == [1, 2, 2]

    def test_invalid_k(self):
        db = random_database(seed=3, num_graphs=2)
        with pytest.raises(ValueError):
            db_partition(db, 0)

    def test_nodes_preorder_count(self):
        db = random_database(seed=3, num_graphs=2)
        tree = db_partition(db, 4)
        # Full binary tree with 4 leaves: 7 nodes.
        assert len(list(tree.nodes())) == 7


class TestUnitContents:
    def test_every_unit_has_every_gid(self):
        db = random_database(seed=4, num_graphs=8)
        tree = db_partition(db, 4)
        for unit in tree.units():
            assert sorted(unit.database.gids()) == sorted(db.gids())

    def test_edge_union_recovers_database(self):
        db = random_database(seed=5, num_graphs=6)
        tree = db_partition(db, 5)
        for gid, graph in db:
            recovered = set()
            for unit in tree.units():
                piece = unit.database[gid]
                orig = unit.orig_vertices[gid]
                for u, v, label in piece.edges():
                    ou, ov = orig[u], orig[v]
                    recovered.add((min(ou, ov), max(ou, ov), label))
            original = {
                (min(u, v), max(u, v), label)
                for u, v, label in graph.edges()
            }
            assert recovered == original

    def test_orig_vertices_consistent_labels(self):
        db = random_database(seed=6, num_graphs=4)
        tree = db_partition(db, 4)
        for unit in tree.units():
            for gid, piece in unit.database:
                orig = unit.orig_vertices[gid]
                for v in piece.vertices():
                    assert piece.vertex_label(v) == db[gid].vertex_label(
                        orig[v]
                    )

    def test_support_threshold_scaling(self):
        db = random_database(seed=7, num_graphs=4)
        tree = db_partition(db, 4)
        assert tree.root.support_threshold(8) == 8
        for unit in tree.units():
            assert unit.support_threshold(8) == 2  # 8 / 2^2
        assert tree.root.support_threshold(1) == 1

    def test_ufreq_validation(self):
        db = random_database(seed=8, num_graphs=3)
        with pytest.raises(ValueError, match="ufreq"):
            db_partition(db, 2, ufreq={0: (0.0,)})


class TestUnitLookup:
    def test_unit_index_of_vertices(self):
        db = random_database(seed=9, num_graphs=4)
        tree = db_partition(db, 4)
        gid = db.gids()[0]
        all_vertices = list(range(db[gid].num_vertices))
        hits = tree.unit_index_of_vertices(gid, all_vertices)
        assert hits  # every vertex lives somewhere
        assert hits <= set(range(4))

    def test_boundary_vertex_in_multiple_units(self):
        db = random_database(seed=10, num_graphs=3)
        tree = db_partition(db, 2)
        gid = db.gids()[0]
        # A connective edge endpoint must appear in both units.
        root_cut = tree.root.connective_edges[gid]
        if root_cut:
            u = root_cut[0][0]
            assert len(tree.unit_index_of_vertices(gid, [u])) == 2

    def test_total_connective_edges_counts_all_levels(self):
        db = random_database(seed=11, num_graphs=4)
        t2 = db_partition(db, 2)
        t4 = db_partition(db, 4)
        assert t4.total_connective_edges() >= t2.total_connective_edges()


class TestSplitNode:
    def test_double_split_rejected(self):
        db = random_database(seed=12, num_graphs=2)
        tree = db_partition(db, 2)
        with pytest.raises(ValueError, match="already split"):
            split_node(tree.root, GraphPartitioner())


class TestRecommendedK:
    def test_fits_in_one_unit(self):
        from repro.partition.dbpartition import recommended_k

        db = random_database(seed=13, num_graphs=4)
        assert recommended_k(db, db.total_edges() * 2) == 1

    def test_scales_with_budget(self):
        from repro.partition.dbpartition import recommended_k

        db = random_database(seed=14, num_graphs=8)
        total = db.total_edges()
        small_budget = recommended_k(db, max(1, total // 4))
        large_budget = recommended_k(db, total)
        assert small_budget > large_budget

    def test_units_respect_budget_roughly(self):
        from repro.partition.dbpartition import db_partition, recommended_k

        db = random_database(seed=15, num_graphs=10, n=8, extra_edges=3)
        budget = db.total_edges() // 3
        k = recommended_k(db, budget)
        tree = db_partition(db, k)
        for unit in tree.units():
            # Connective-edge duplication is heavy on small dense graphs
            # (every split copies its cut edges into both sides), so the
            # budget is honored only up to that duplication factor.
            assert unit.database.total_edges() <= 3.0 * budget

    def test_invalid_budget(self):
        import pytest as _pytest

        from repro.partition.dbpartition import recommended_k

        db = random_database(seed=16, num_graphs=2)
        with _pytest.raises(ValueError):
            recommended_k(db, 0)

"""Round-trip and error tests for the t/v/e text format."""

import pytest

from repro.graph import io
from repro.graph.database import GraphDatabase

from .conftest import make_graph, random_database, triangle


class TestRoundTrip:
    def test_dumps_loads_roundtrip(self):
        db = random_database(seed=9, num_graphs=5)
        text = io.dumps(db)
        back = io.loads(text)
        assert len(back) == len(db)
        for gid, graph in db:
            clone = back[gid]
            assert clone.num_vertices == graph.num_vertices
            assert sorted(clone.edges()) == sorted(graph.edges())
            assert clone.vertex_labels() == graph.vertex_labels()

    def test_file_roundtrip(self, tmp_path):
        db = GraphDatabase.from_graphs([triangle(labels=(1, 2, 3))])
        path = tmp_path / "db.txt"
        io.write_database(db, path)
        back = io.read_database(path)
        assert back[0].vertex_labels() == [1, 2, 3]
        assert back[0].num_edges == 3

    def test_string_labels_roundtrip(self):
        g = make_graph(["C", "O"], [(0, 1, "double")])
        text = io.dumps(GraphDatabase.from_graphs([g]))
        back = io.loads(text)
        assert back[0].vertex_label(0) == "C"
        assert back[0].edge_label(0, 1) == "double"

    def test_int_labels_parse_as_ints(self):
        back = io.loads("t # 0\nv 0 1\nv 1 2\ne 0 1 3\n")
        assert back[0].vertex_label(0) == 1
        assert back[0].edge_label(0, 1) == 3

    def test_gids_preserved(self):
        db = GraphDatabase([(10, triangle()), (42, triangle())])
        back = io.loads(io.dumps(db))
        assert sorted(back.gids()) == [10, 42]


class TestFormat:
    def test_blank_lines_and_comments_skipped(self):
        text = "\n# comment\nt # 0\nv 0 1\nv 1 1\n\ne 0 1 2\n"
        back = io.loads(text)
        assert back[0].num_edges == 1

    def test_vertex_before_t_rejected(self):
        with pytest.raises(ValueError, match="before 't'"):
            io.loads("v 0 1\n")

    def test_edge_before_t_rejected(self):
        with pytest.raises(ValueError, match="before 't'"):
            io.loads("e 0 1 2\n")

    def test_out_of_order_vertex_rejected(self):
        with pytest.raises(ValueError, match="out of order"):
            io.loads("t # 0\nv 1 0\n")

    def test_unknown_directive_rejected(self):
        with pytest.raises(ValueError, match="unknown directive"):
            io.loads("t # 0\nx 1 2\n")

    def test_empty_input_gives_empty_database(self):
        assert len(io.loads("")) == 0


class TestLabelValidation:
    def test_whitespace_label_rejected(self):
        g = make_graph(["a b"], [])
        with pytest.raises(ValueError, match="t/v/e"):
            io.dumps(GraphDatabase.from_graphs([g]))

    def test_empty_label_rejected(self):
        g = make_graph([""], [])
        with pytest.raises(ValueError, match="t/v/e"):
            io.dumps(GraphDatabase.from_graphs([g]))

    def test_whitespace_edge_label_rejected(self):
        g = make_graph(["a", "b"], [(0, 1, "x\ty")])
        with pytest.raises(ValueError, match="t/v/e"):
            io.dumps(GraphDatabase.from_graphs([g]))

    def test_plain_string_labels_fine(self):
        g = make_graph(["C", "O"], [(0, 1, "double")])
        assert "double" in io.dumps(GraphDatabase.from_graphs([g]))

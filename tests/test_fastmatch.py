"""Differential harness for the flat-array existence matcher.

:func:`repro.perf.fastmatch.flat_exists` must agree with the recursive
reference matcher (:func:`repro.graph.isomorphism.subgraph_exists_reference`)
and with the dict-based plan matcher
(:func:`repro.perf.matchplan.plan_exists`) on *every* pattern/target pair,
under both monomorphic and induced semantics.  The randomized sweep here
covers several hundred pairs across regimes the flat kernels treat
specially:

* **label-heavy** graphs (many distinct vertex/edge labels — small
  bisect sub-runs, unanchored ``by_label`` seeds are selective);
* **label-poor** graphs (one label — sub-runs span whole rows, maximal
  backtracking);
* **disconnected patterns** (a later component's first position has no
  anchor, exercising the unanchored re-seed mid-search);
* patterns larger than the target, empty patterns, single vertices.

All graphs are self-edge-free (``LabeledGraph`` forbids loops), so the
kernel never needs a ``cand != anchor`` guard — the differential sweep
would catch it if that assumption broke.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings

from repro.graph.isomorphism import subgraph_exists_reference
from repro.graph.labeled_graph import LabeledGraph
from repro.perf.counters import COUNTERS
from repro.perf.fastmatch import FlatPlan, flat_exists, get_flat_plan
from repro.perf.fingerprint import GraphFingerprint
from repro.perf.flatgraph import INTERNER, FlatGraph
from repro.perf.matchplan import get_match_plan, plan_exists

from .conftest import make_graph, path_graph, random_graph, star_graph
from .test_properties import connected_graphs


def random_pattern(rng, max_n, vlabels, elabels, p_extra=0.3):
    """A small random pattern; may be disconnected (no spanning tree)."""
    n = rng.randint(1, max_n)
    graph = LabeledGraph()
    for _ in range(n):
        graph.add_vertex(rng.randrange(vlabels))
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p_extra:
                graph.add_edge(u, v, rng.randrange(elabels))
    return graph


def all_matchers_agree(pattern, target, context=""):
    """The assertion at the heart of the suite: three matchers, both
    semantics, one verdict."""
    flat_target = FlatGraph.from_labeled(target)
    fingerprint = GraphFingerprint(target)
    for induced in (False, True):
        want = subgraph_exists_reference(pattern, target, induced=induced)
        got_plan = plan_exists(
            get_match_plan(pattern), target, fingerprint, induced=induced
        )
        got_flat = flat_exists(
            get_flat_plan(pattern), flat_target, induced=induced
        )
        assert got_plan == want, f"plan_exists {context} induced={induced}"
        assert got_flat == want, f"flat_exists {context} induced={induced}"


# ----------------------------------------------------------------------
# The randomized differential sweep (~200+ pairs per regime set)
# ----------------------------------------------------------------------
REGIMES = {
    # name: (seed, vertex labels, edge labels), label-poor -> label-heavy
    "label-poor": (1001, 1, 1),
    "balanced": (2002, 3, 2),
    "label-heavy": (3003, 8, 5),
}


class TestRandomizedDifferential:
    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_connected_patterns(self, regime):
        seed, vlabels, elabels = REGIMES[regime]
        rng = random.Random(seed)
        for trial in range(80):
            target = random_graph(
                rng,
                rng.randint(2, 9),
                extra_edges=rng.randint(0, 4),
                num_vertex_labels=vlabels,
                num_edge_labels=elabels,
            )
            pattern = random_graph(
                rng,
                rng.randint(2, 5),
                extra_edges=rng.randint(0, 2),
                num_vertex_labels=vlabels,
                num_edge_labels=elabels,
            )
            all_matchers_agree(pattern, target, f"{regime}#{trial}")

    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_disconnected_patterns(self, regime):
        """Patterns with multiple components: the matcher must re-seed
        from the label index mid-search and respect injectivity across
        components."""
        seed, vlabels, elabels = REGIMES[regime]
        rng = random.Random(0xD15C + seed)
        for trial in range(60):
            target = random_graph(
                rng,
                rng.randint(3, 9),
                extra_edges=rng.randint(0, 3),
                num_vertex_labels=vlabels,
                num_edge_labels=elabels,
            )
            pattern = random_pattern(rng, 5, vlabels, elabels)
            all_matchers_agree(pattern, target, f"disc-{regime}#{trial}")

    def test_pattern_embedded_by_construction(self):
        """Positive cases: the pattern is an exact subgraph of the
        target, so every matcher must say yes (monomorphic)."""
        rng = random.Random(0xE0B)
        for trial in range(40):
            target = random_graph(
                rng, rng.randint(3, 8), extra_edges=rng.randint(0, 3)
            )
            keep = rng.sample(
                range(target.num_vertices), rng.randint(2, 3)
            )
            remap = {v: i for i, v in enumerate(keep)}
            pattern = LabeledGraph()
            for v in keep:
                pattern.add_vertex(target.vertex_label(v))
            for u, v, label in target.edges():
                if u in remap and v in remap:
                    pattern.add_edge(remap[u], remap[v], label)
            flat_target = FlatGraph.from_labeled(target)
            assert flat_exists(get_flat_plan(pattern), flat_target), trial
            all_matchers_agree(pattern, target, f"embed#{trial}")

    @settings(max_examples=50, deadline=None)
    @given(
        connected_graphs(max_vertices=5, vlabels=3, elabels=2),
        connected_graphs(max_vertices=8, vlabels=3, elabels=2),
    )
    def test_hypothesis_differential(self, pattern, target):
        all_matchers_agree(pattern, target, "hypothesis")


# ----------------------------------------------------------------------
# Corner cases
# ----------------------------------------------------------------------
class TestCornerCases:
    def test_empty_pattern_matches_everything(self):
        target = FlatGraph.from_labeled(path_graph(3))
        assert flat_exists(get_flat_plan(LabeledGraph()), target)

    def test_single_vertex(self):
        target = FlatGraph.from_labeled(make_graph([0, 1], [(0, 1, 0)]))
        assert flat_exists(get_flat_plan(make_graph([1], [])), target)
        assert not flat_exists(get_flat_plan(make_graph([7], [])), target)

    def test_pattern_larger_than_target_short_circuits(self):
        target = FlatGraph.from_labeled(path_graph(2))
        searches = COUNTERS.flat_searches
        assert not flat_exists(get_flat_plan(path_graph(5)), target)
        assert COUNTERS.flat_searches == searches  # rejected pre-search

    def test_star_needs_degree(self):
        """Degree pruning: a 4-star cannot embed in a 3-star."""
        big = star_graph(4)
        small = FlatGraph.from_labeled(star_graph(3))
        assert not flat_exists(get_flat_plan(big), small)
        assert flat_exists(
            get_flat_plan(star_graph(3)), FlatGraph.from_labeled(big)
        )

    def test_induced_vs_monomorphic_divergence(self):
        """P3 embeds in a triangle monomorphically but not induced —
        the canonical semantic split both matchers must reproduce."""
        p3 = path_graph(3)
        triangle = make_graph(
            [0, 0, 0], [(0, 1, 0), (1, 2, 0), (0, 2, 0)]
        )
        flat_tri = FlatGraph.from_labeled(triangle)
        plan = get_flat_plan(p3)
        assert flat_exists(plan, flat_tri, induced=False)
        assert not flat_exists(plan, flat_tri, induced=True)

    def test_counters_track_searches(self):
        target = FlatGraph.from_labeled(path_graph(4))
        plan = get_flat_plan(path_graph(3))
        vf2 = COUNTERS.vf2_calls
        flat = COUNTERS.flat_searches
        assert flat_exists(plan, target)
        assert COUNTERS.vf2_calls == vf2 + 1
        assert COUNTERS.flat_searches == flat + 1


# ----------------------------------------------------------------------
# Plan compilation and the unmatchable-plan revalidation hazard
# ----------------------------------------------------------------------
class TestFlatPlanLifecycle:
    def test_plan_cached_per_version(self):
        pattern = path_graph(3)
        plan = get_flat_plan(pattern)
        assert get_flat_plan(pattern) is plan
        pattern.set_vertex_label(0, 1)  # version bump
        assert get_flat_plan(pattern) is not plan

    def test_unmatchable_plan_revalidates_when_interner_grows(self):
        """A pattern whose label predates any flat graph is unmatchable
        *now* — but compiling a database that introduces the label must
        transparently recompile the plan, or the matcher would silently
        return False forever (the staleness hazard)."""
        rare = f"rare-label-{random.randrange(10 ** 9)}"
        pattern = make_graph([rare, rare], [(0, 1, 0)])
        INTERNER.intern(0)  # the edge label is known; the vertex label not
        plan = get_flat_plan(pattern)
        assert plan.unmatchable

        target = make_graph([rare, rare, rare], [(0, 1, 0), (1, 2, 0)])
        flat_target = FlatGraph.from_labeled(target)  # interns `rare`
        refreshed = get_flat_plan(pattern)
        assert refreshed is not plan
        assert not refreshed.unmatchable
        assert flat_exists(refreshed, flat_target)

    def test_unmatchable_plan_stays_cached_until_growth(self):
        rare = f"rare-label-{random.randrange(10 ** 9)}"
        pattern = make_graph([rare], [])
        plan = get_flat_plan(pattern)
        assert plan.unmatchable
        assert get_flat_plan(pattern) is plan  # no growth -> same object

    def test_flat_plan_mirrors_match_plan_shape(self):
        pattern = random_graph(random.Random(5), 5, extra_edges=2)
        match_plan = get_match_plan(pattern)
        plan = FlatPlan(pattern)
        assert plan.n == match_plan.n
        assert plan.num_vertices == pattern.num_vertices
        assert plan.num_edges == pattern.num_edges
        assert len(plan.vlabs) == plan.n
        assert len(plan.aptr) == plan.n + 1
        assert len(plan.apos) == len(plan.aelab) == plan.aptr[-1]
        assert len(plan.nptr) == plan.n + 1
        # Anchor counts per position agree with the dict-based plan.
        for depth, prior in enumerate(match_plan.anchors):
            assert plan.aptr[depth + 1] - plan.aptr[depth] == len(prior)

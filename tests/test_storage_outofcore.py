"""Out-of-core acceptance: mining/serving a database larger than memory.

The tentpole claim of the storage subsystem: a database several times
larger than the decoded-graph cache budget mines **byte-identically** to
the in-memory path while only a bounded number of decoded graphs is ever
resident.  Residency is asserted with the :class:`GraphLRU`'s
``max_live`` high-water — a WeakSet over every decoded graph still
referenced anywhere in the process — which is the deterministic,
machine-independent form of "peak RSS is bounded by the cache budget,
not the database size" (the actual process-level RSS ratio is measured
and reported by ``benchmarks/bench_storage.py``).

The serving half: a catalog published into the backend answers metadata
queries straight from indexed SQL, without decoding pattern blobs.
"""

import io

import pytest

from repro.mining.gaston import GastonMiner
from repro.mining.gspan import GSpanMiner
from repro.mining.store import dump_patterns
from repro.core.partminer import PartMiner
from repro.serve.catalog import PatternCatalog
from repro.serve.engine import QueryEngine
from repro.storage import open_backend

from .conftest import random_database

#: Cache budget and database size: 48 graphs through 8 decode slots is a
#: 6x (>= the acceptance floor of 4x) out-of-core ratio.
CACHE_GRAPHS = 8
NUM_GRAPHS = 6 * CACHE_GRAPHS

#: Slack over the budget for graphs pinned by the active iteration frame
#: (the for-loop variable, the matcher's current target, ...).
LIVE_SLACK = 4


def pattern_text(patterns):
    buffer = io.StringIO()
    dump_patterns(patterns, buffer)
    return buffer.getvalue()


@pytest.fixture(scope="module")
def database():
    return random_database(seed=55, num_graphs=NUM_GRAPHS, n=6)


def stored(tmp_path, database, name="outofcore.db"):
    backend = open_backend(
        "sqlite", tmp_path / name, cache_graphs=CACHE_GRAPHS
    )
    backend.import_database(database)
    backend.cache.clear()
    backend.cache.max_live = 0
    backend.cache.max_cached = 0
    return backend


@pytest.mark.parametrize(
    "make_miner",
    [
        pytest.param(lambda: GastonMiner(), id="gaston"),
        pytest.param(lambda: PartMiner(k=2), id="partminer"),
    ],
)
def test_mine_larger_than_cache_is_byte_identical_and_bounded(
    tmp_path, database, make_miner
):
    assert NUM_GRAPHS >= 4 * CACHE_GRAPHS
    baseline = make_miner().mine(database, 6)
    base_text = pattern_text(getattr(baseline, "patterns", baseline))
    backend = stored(tmp_path, database)
    try:
        mined = make_miner().mine(backend.database(), 6)
        assert pattern_text(getattr(mined, "patterns", mined)) == base_text
        stats = backend.cache.stats()
        # The cache never silently grew ...
        assert stats["max_cached"] <= CACHE_GRAPHS
        # ... and no code path accumulated the whole database in memory:
        # the decoded-graph high-water stays at the budget (+ iteration
        # slack), far below the database size.
        assert stats["max_live"] <= CACHE_GRAPHS + LIVE_SLACK
        assert stats["max_live"] < NUM_GRAPHS
        # The run genuinely streamed: rows were re-read, not retained.
        assert stats["evictions"] > NUM_GRAPHS
    finally:
        backend.close()


def test_incremental_reimport_touches_only_changed_rows(
    tmp_path, database
):
    backend = stored(tmp_path, database, "reimport.db")
    try:
        assert backend.import_database(database) == 0
        changed = database[3].copy()
        changed.set_vertex_label(0, 9)
        database_copy = database.copy()
        database_copy.replace(3, changed)
        assert backend.import_database(database_copy) == 1
    finally:
        backend.close()


def test_serve_answers_without_decoding_patterns(tmp_path, database):
    patterns = GSpanMiner().mine(database, NUM_GRAPHS // 3)
    assert len(patterns) >= 5
    backend = stored(tmp_path, database, "serve.db")
    try:
        catalog = PatternCatalog(tmp_path / "catalog", storage=backend)
        snapshot = catalog.publish(
            patterns, meta={"note": "v1"}, database=backend.database()
        )
        engine = QueryEngine(snapshot, backend.database())

        def decoded_rows():
            return sum(
                1
                for entry in snapshot.entries._cache.values()
                if entry._pattern is not None
            )

        top = engine.top_k(3)
        assert len(top) == 3
        assert [e.support for e in top] == sorted(
            (p.support for p in patterns), reverse=True
        )[:3]
        # Metadata queries ran as indexed SQL: no payload was decoded.
        assert decoded_rows() == 0

        # A containment query verifies only the index's candidates —
        # decoding stays a strict subset of the catalog.
        answer = engine.contains(database[0])
        assert answer.stats.candidates < len(snapshot.entries)
        assert decoded_rows() <= answer.stats.candidates
    finally:
        backend.close()


def test_catalog_reload_from_disk_only(tmp_path, database):
    """A fresh backend over the same file serves the published catalog."""
    patterns = GSpanMiner().mine(database, NUM_GRAPHS // 3)
    path = tmp_path / "persist.db"
    with open_backend(
        "sqlite", path, cache_graphs=CACHE_GRAPHS
    ) as backend:
        backend.import_database(database)
        catalog = PatternCatalog(tmp_path / "cat", storage=backend)
        published = catalog.publish(
            patterns, database=backend.database()
        )
        want = pattern_text(published.patterns)
        version = published.version
    # Everything above is gone; reopen from bytes on disk alone.
    with open_backend(
        "sqlite", path, cache_graphs=CACHE_GRAPHS
    ) as backend:
        catalog = PatternCatalog(tmp_path / "cat", storage=backend)
        loaded = catalog.load()
        assert loaded.version == version
        assert pattern_text(loaded.patterns) == want

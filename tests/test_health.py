"""Tests for health primitives (repro.resilience.health)."""

import pytest

from repro.resilience.errors import CircuitOpen, DeadlineExceeded
from repro.resilience.health import CircuitBreaker, Deadline, MemoryWatermark


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def make(self, clock, threshold=3, reset=10.0):
        return CircuitBreaker(
            "dep",
            failure_threshold=threshold,
            reset_timeout=reset,
            clock=clock,
        )

    def test_starts_closed_and_allows(self):
        breaker = self.make(FakeClock())
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_at_failure_threshold(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.stats["opens"] == 1
        assert breaker.stats["rejected"] == 1

    def test_success_resets_failure_streak(self):
        breaker = self.make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller: still rejected

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow() and breaker.allow()

    def test_probe_failure_retrips_full_timeout(self):
        clock = FakeClock()
        breaker = self.make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(10.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert not breaker.allow()
        clock.advance(0.2)
        assert breaker.allow()

    def test_call_wraps_function(self):
        clock = FakeClock()
        breaker = self.make(clock, threshold=1)
        assert breaker.call(lambda: 42) == 42
        with pytest.raises(RuntimeError, match="boom"):
            breaker.call(self._boom)
        with pytest.raises(CircuitOpen, match="dep"):
            breaker.call(lambda: 42)

    @staticmethod
    def _boom():
        raise RuntimeError("boom")

    def test_snapshot_shape(self):
        breaker = self.make(FakeClock())
        snap = breaker.snapshot()
        assert snap["name"] == "dep"
        assert snap["state"] == "closed"
        assert {"calls", "failures", "opens", "rejected"} <= set(snap)

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker("x", failure_threshold=0)


class TestDeadline:
    def test_not_expired_within_budget(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining() == pytest.approx(5.0)
        deadline.check()  # no raise

    def test_check_raises_after_expiry(self):
        clock = FakeClock()
        deadline = Deadline.after(5.0, clock=clock)
        clock.advance(5.1)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded, match="match query"):
            deadline.check("match query")


class TestMemoryWatermark:
    def test_levels(self):
        usage = {"rss": 0}
        mark = MemoryWatermark(100, 200, usage_fn=lambda: usage["rss"])
        assert mark.level() == "ok"
        usage["rss"] = 150
        assert mark.level() == "soft"
        usage["rss"] = 200
        assert mark.level() == "hard"

    def test_unset_thresholds_always_ok(self):
        mark = MemoryWatermark(usage_fn=lambda: 10**15)
        assert mark.level() == "ok"

    def test_soft_above_hard_rejected(self):
        with pytest.raises(ValueError):
            MemoryWatermark(200, 100)

    def test_snapshot(self):
        mark = MemoryWatermark(100, 200, usage_fn=lambda: 42)
        assert mark.snapshot() == {
            "usage_bytes": 42,
            "soft_bytes": 100,
            "hard_bytes": 200,
            "level": "ok",
        }

    def test_default_usage_fn_returns_something(self):
        # On Linux this reads /proc/self/statm; a real process has RSS.
        assert MemoryWatermark(1, 2).usage() > 0

"""Tests for pattern joins and the level support counter."""

from repro.core.join import (
    SupportCounter,
    join_patterns,
    join_single_edges,
    pattern_edge_triples,
)
from repro.graph.canonical import canonical_code
from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import LabeledGraph
from repro.mining.base import Pattern

from .conftest import make_graph, path_graph, triangle


def pat(graph, tids=(0,)):
    return Pattern.from_graph(graph, tids)


class TestPatternEdgeTriples:
    def test_triples_normalized(self):
        g = make_graph([2, 1], [(0, 1, 5)])
        assert pattern_edge_triples(g) == {(1, 5, 2)}

    def test_triangle(self):
        assert pattern_edge_triples(triangle()) == {(0, 0, 0)}


class TestSupportCounter:
    def test_count_matches_direct(self, medium_db):
        counter = SupportCounter(medium_db)
        pattern = path_graph(3)
        support, tids = counter.count(pattern)
        from repro.graph.isomorphism import count_support

        want_support, want_tids = count_support(pattern, medium_db)
        assert (support, tids) == (want_support, want_tids)

    def test_known_tids_trusted(self, medium_db):
        counter = SupportCounter(medium_db)
        pattern = path_graph(3)
        _, true_tids = counter.count(pattern)
        counter2 = SupportCounter(medium_db)
        support, tids = counter2.count(pattern, known_tids=true_tids)
        assert tids == true_tids
        assert counter2.isomorphism_tests <= counter.isomorphism_tests

    def test_restrict_bounds_result(self, medium_db):
        counter = SupportCounter(medium_db)
        pattern = path_graph(2)
        _, all_tids = counter.count(pattern)
        some = frozenset(list(all_tids)[:2])
        support, tids = counter.count(pattern, restrict=some)
        assert tids == some & all_tids

    def test_candidate_gids_prunes_by_triples(self):
        g1 = make_graph([0, 0], [(0, 1, 0)])
        g2 = make_graph([1, 1], [(0, 1, 1)])
        db = GraphDatabase.from_graphs([g1, g2])
        counter = SupportCounter(db)
        assert counter.candidate_gids(g1) == {0}
        assert counter.candidate_gids(triangle(labels=(5, 5, 5))) == set()


class TestJoinPatterns:
    def test_two_paths_give_triangle_and_more(self):
        p = pat(path_graph(3), tids=(0, 1))
        result = join_patterns([p], [p])
        keys = set(result)
        assert canonical_code(triangle()) in keys
        assert canonical_code(path_graph(4)) in keys

    def test_empty_inputs(self):
        assert join_patterns([], [pat(path_graph(3))]) == {}
        assert join_patterns([pat(path_graph(3))], []) == {}

    def test_seen_keys_skipped(self):
        p = pat(path_graph(3))
        everything = set(join_patterns([p], [p]))
        result = join_patterns([p], [p], seen=everything)
        assert result == {}

    def test_tid_bound_is_intersection(self):
        p = pat(path_graph(3), tids=(0, 1, 2))
        q = pat(path_graph(3), tids=(1, 2, 3))
        for _, (graph, bound) in join_patterns([p], [q]).items():
            assert bound == {1, 2}

    def test_disjoint_tids_generate_nothing(self):
        p = pat(path_graph(3), tids=(0,))
        q = pat(path_graph(3), tids=(1,))
        assert join_patterns([p], [q]) == {}

    def test_candidates_are_one_bigger(self):
        p = pat(triangle(), tids=(0, 1))
        for _, (graph, _) in join_patterns([p], [p]).items():
            assert graph.num_edges == 4

    def test_incompatible_labels_no_join(self):
        p = pat(path_graph(3, vlabel=0), tids=(0,))
        q = pat(path_graph(3, vlabel=1), tids=(0,))
        assert join_patterns([p], [q]) == {}


class TestJoinSingleEdges:
    def test_shared_vertex_label_joins(self):
        a = pat(LabeledGraph.single_edge(0, 0, 1), tids=(0,))
        b = pat(LabeledGraph.single_edge(1, 1, 2), tids=(0,))
        result = join_single_edges([a], [b])
        # They share vertex label 1: one 2-edge path exists.
        expected = make_graph([0, 1, 2], [(0, 1, 0), (1, 2, 1)])
        assert canonical_code(expected) in result

    def test_no_shared_labels(self):
        a = pat(LabeledGraph.single_edge(0, 0, 0), tids=(0,))
        b = pat(LabeledGraph.single_edge(1, 1, 1), tids=(0,))
        assert join_single_edges([a], [b]) == {}


class TestCoreCache:
    def test_cache_returns_consistent_instance(self):
        from repro.core.join import cached_deletion_cores, _CORE_CACHE

        p1 = pat(path_graph(3), tids=(0,))
        graph_a, cores_a = cached_deletion_cores(p1)
        # A different isomorphic instance hits the same cache entry.
        p2 = pat(path_graph(3), tids=(1,))
        graph_b, cores_b = cached_deletion_cores(p2)
        assert graph_a is graph_b
        assert cores_a is cores_b
        assert p1.key in _CORE_CACHE

    def test_cached_cores_index_into_cached_graph(self):
        from repro.core.join import cached_deletion_cores

        p = pat(triangle(labels=(1, 2, 3)), tids=(0,))
        graph, cores = cached_deletion_cores(p)
        for core in cores:
            for v in core.core.vertices():
                parent = core.core_to_parent[v]
                assert core.core.vertex_label(v) == graph.vertex_label(
                    parent
                )


class TestOverlaySignatures:
    def test_shared_signatures_suppress_duplicates(self):
        from repro.graph.operations import (
            edge_deletion_cores,
            overlay_candidates,
        )

        # Uniform 3-path: both deletions give isomorphic 1-edge cores, so
        # different (donor, host) pairs regenerate the same attachments.
        p = path_graph(3)
        cores = edge_deletion_cores(p)
        shared = set()
        total = 0
        for donor in cores:
            for host in cores:
                total += len(
                    overlay_candidates(donor, host, p, shared)
                )
        fresh = sum(
            len(overlay_candidates(d, h, p))
            for d in cores
            for h in cores
        )
        assert total < fresh

    def test_signature_dedup_preserves_candidate_set(self):
        from repro.graph.canonical import canonical_code
        from repro.graph.operations import (
            edge_deletion_cores,
            overlay_candidates,
        )

        p = path_graph(4)
        cores = edge_deletion_cores(p)
        with_shared = set()
        shared = set()
        for donor in cores:
            for host in cores:
                for cand in overlay_candidates(donor, host, p, shared):
                    with_shared.add(canonical_code(cand))
        without = set()
        for donor in cores:
            for host in cores:
                for cand in overlay_candidates(donor, host, p):
                    without.add(canonical_code(cand))
        assert with_shared == without

"""Tests for the gSpan miner."""

import random

from repro.graph.database import GraphDatabase
from repro.graph.isomorphism import count_support
from repro.mining.bruteforce import BruteForceMiner
from repro.mining.gspan import GSpanMiner

from .conftest import make_graph, path_graph, random_database, triangle


class TestBasics:
    def test_single_graph_all_patterns(self):
        db = GraphDatabase.from_graphs([triangle(labels=(0, 1, 2))])
        result = GSpanMiner().mine(db, 1)
        # Triangle with distinct labels: 3 edges, 3 2-paths, 1 triangle.
        assert len(result.of_size(1)) == 3
        assert len(result.of_size(2)) == 3
        assert len(result.of_size(3)) == 1

    def test_threshold_filters(self, small_db):
        all_patterns = GSpanMiner().mine(small_db, 1)
        frequent = GSpanMiner().mine(small_db, 3)
        assert len(frequent) < len(all_patterns)
        assert frequent.keys() <= all_patterns.keys()
        for p in frequent:
            assert p.support >= 3

    def test_fractional_support(self, small_db):
        by_count = GSpanMiner().mine(small_db, 2)
        by_fraction = GSpanMiner().mine(small_db, 2 / 3)
        assert by_count.keys() == by_fraction.keys()

    def test_max_size_bound(self, medium_db):
        bounded = GSpanMiner(max_size=2).mine(medium_db, 2)
        assert bounded.max_size() <= 2
        unbounded = GSpanMiner().mine(medium_db, 2)
        assert bounded.keys() == {
            p.key for p in unbounded if p.size <= 2
        }

    def test_empty_database(self):
        result = GSpanMiner().mine(GraphDatabase(), 1)
        assert len(result) == 0

    def test_no_frequent_edges(self):
        db = GraphDatabase.from_graphs(
            [make_graph([0, 0], [(0, 1, 0)]), make_graph([1, 1], [(0, 1, 1)])]
        )
        assert len(GSpanMiner().mine(db, 2)) == 0


class TestCorrectness:
    def test_supports_are_exact(self, medium_db):
        result = GSpanMiner().mine(medium_db, 3)
        for p in result:
            support, tids = count_support(p.graph, medium_db)
            assert p.support == support
            assert p.tids == tids

    def test_patterns_are_connected(self, medium_db):
        for p in GSpanMiner().mine(medium_db, 2):
            assert p.graph.is_connected()

    def test_apriori_downward_closure(self, medium_db):
        """Every subpattern of a frequent pattern is frequent (Theorem 2)."""
        from repro.graph.canonical import canonical_code

        result = GSpanMiner().mine(medium_db, 3)
        keys = result.keys()
        for p in result:
            if p.size < 2:
                continue
            for u, v, _ in list(p.graph.edges()):
                work = p.graph.copy()
                work.remove_edge(u, v)
                keep = [w for w in work.vertices() if work.degree(w) > 0]
                sub = work.induced_subgraph(keep)
                if sub.num_edges and sub.is_connected():
                    assert canonical_code(sub) in keys

    def test_matches_bruteforce_on_random_dbs(self):
        rng = random.Random(55)
        for seed in range(6):
            db = random_database(seed=seed, num_graphs=8, n=6, extra_edges=1)
            sup = rng.choice([2, 3])
            got = GSpanMiner().mine(db, sup)
            want = BruteForceMiner().mine(db, sup)
            assert got.keys() == want.keys()
            for p in got:
                assert p.tids == want.get(p.key).tids


class TestStats:
    def test_stats_populated(self, medium_db):
        miner = GSpanMiner()
        result = miner.mine(medium_db, 3)
        assert miner.stats.patterns_found == len(result)
        assert miner.stats.candidates_generated >= 0

    def test_stats_reset_between_runs(self, medium_db):
        miner = GSpanMiner()
        miner.mine(medium_db, 3)
        first = miner.stats.patterns_found
        miner.mine(medium_db, 3)
        assert miner.stats.patterns_found == first


class TestDuplicateElimination:
    def test_symmetric_graph_counted_once(self):
        # A square has many automorphisms; each pattern must appear once.
        square = make_graph(
            [0] * 4, [(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)]
        )
        db = GraphDatabase.from_graphs([square, square.copy()])
        result = GSpanMiner().mine(db, 2)
        sizes = sorted(p.size for p in result)
        # edge, 2-path, 3-path, square
        assert sizes == [1, 2, 3, 4]

    def test_path_database(self):
        db = GraphDatabase.from_graphs([path_graph(5), path_graph(4)])
        result = GSpanMiner().mine(db, 2)
        # Frequent: paths of length 1..3 (all same labels).
        assert sorted(p.size for p in result) == [1, 2, 3]

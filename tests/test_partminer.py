"""Tests for the PartMiner algorithm (paper Fig 11)."""

import pytest

from repro.core.partminer import PartMiner, resolve_unit_threshold
from repro.mining.gaston import GastonMiner
from repro.mining.gspan import GSpanMiner
from repro.partition.dbpartition import db_partition
from repro.partition.metis import MetisPartitioner
from repro.partition.weights import PARTITION2
from repro.partition.graphpart import GraphPartitioner

from .conftest import random_database


class TestUnitThreshold:
    def test_paper_strategy_scales_with_depth(self):
        db = random_database(seed=400, num_graphs=4)
        tree = db_partition(db, 4)
        unit = tree.units()[0]
        assert resolve_unit_threshold(unit, 8, "paper") == 2
        assert resolve_unit_threshold(unit, 1, "paper") == 1

    def test_exact_strategy(self):
        db = random_database(seed=400, num_graphs=4)
        tree = db_partition(db, 2)
        assert resolve_unit_threshold(tree.units()[0], 8, "exact") == 1

    def test_fixed_strategy(self):
        db = random_database(seed=400, num_graphs=4)
        tree = db_partition(db, 2)
        assert resolve_unit_threshold(tree.units()[0], 8, 3) == 3

    def test_invalid_strategy(self):
        db = random_database(seed=400, num_graphs=4)
        tree = db_partition(db, 2)
        with pytest.raises(ValueError):
            resolve_unit_threshold(tree.units()[0], 8, "bogus")

    @pytest.mark.parametrize("k", [2, 4, 8])
    def test_paper_with_k_matches_depth_based_for_power_of_two_k(self, k):
        """``ceil(sup/k)`` (explicit k) and ``ceil(sup/2^depth)`` (the
        node's depth) are the same rule whenever k is a power of two —
        every unit of a balanced tree sits at depth log2(k)."""
        db = random_database(seed=401, num_graphs=16, n=6)
        tree = db_partition(db, k)
        for root_threshold in (1, 5, 8, 9, 16):
            for unit in tree.units():
                assert resolve_unit_threshold(
                    unit, root_threshold, "paper", k=k
                ) == resolve_unit_threshold(unit, root_threshold, "paper")

    def test_paper_with_k_uses_ceiling_division(self):
        """Non-power-of-two k: explicit ``k`` applies ceil(sup/k)
        regardless of the node's depth."""
        db = random_database(seed=402, num_graphs=9, n=5)
        tree = db_partition(db, 3)
        for unit in tree.units():
            assert resolve_unit_threshold(unit, 10, "paper", k=3) == 4
            assert resolve_unit_threshold(unit, 3, "paper", k=3) == 1

    def test_math_import_is_module_level(self):
        """Regression for the hoisted function-local ``import math``."""
        import math

        from repro.core import partminer

        assert partminer.math is math


class TestLosslessEquality:
    """PartMiner (exact unit support) == gSpan on the whole database."""

    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_exact_mode_equals_gspan(self, k):
        db = random_database(seed=401, num_graphs=10, n=6, extra_edges=1)
        truth = GSpanMiner().mine(db, 3)
        result = PartMiner(k=k, unit_support="exact").mine(db, 3)
        assert result.patterns.keys() == truth.keys()
        for p in result.patterns:
            assert p.tids == truth.get(p.key).tids

    def test_exact_mode_with_bruteforce_units(self):
        from repro.mining.bruteforce import BruteForceMiner

        db = random_database(seed=402, num_graphs=8, n=6)
        truth = GSpanMiner().mine(db, 2)
        result = PartMiner(
            k=2, unit_support="exact", miner_factory=BruteForceMiner
        ).mine(db, 2)
        assert result.patterns.keys() == truth.keys()

    def test_paper_mode_no_false_positives(self):
        db = random_database(seed=403, num_graphs=12, n=7)
        truth = GSpanMiner().mine(db, 3)
        result = PartMiner(k=2, unit_support="paper").mine(db, 3)
        assert result.patterns.keys() <= truth.keys()

    def test_paper_mode_high_recall(self):
        db = random_database(seed=404, num_graphs=12, n=7)
        truth = GSpanMiner().mine(db, 3)
        result = PartMiner(k=2, unit_support="paper").mine(db, 3)
        recall = len(result.patterns.keys() & truth.keys()) / len(truth)
        assert recall >= 0.95


class TestConfigurations:
    def test_metis_partitioner(self):
        db = random_database(seed=405, num_graphs=8, n=6)
        result = PartMiner(
            k=2, partitioner=MetisPartitioner(), unit_support="exact"
        ).mine(db, 3)
        truth = GSpanMiner().mine(db, 3)
        assert result.patterns.keys() == truth.keys()

    def test_partition2_criterion(self):
        db = random_database(seed=406, num_graphs=8, n=6)
        result = PartMiner(
            k=2,
            partitioner=GraphPartitioner(PARTITION2),
            unit_support="exact",
        ).mine(db, 3)
        truth = GSpanMiner().mine(db, 3)
        assert result.patterns.keys() == truth.keys()

    def test_gaston_units_default(self):
        miner = PartMiner(k=2)
        assert miner.miner_factory is GastonMiner

    def test_max_size(self):
        db = random_database(seed=407, num_graphs=8, n=6)
        result = PartMiner(k=2, max_size=2, unit_support="exact").mine(db, 2)
        assert result.patterns.max_size() <= 2

    def test_k1_degenerates_to_plain_mining(self):
        db = random_database(seed=408, num_graphs=8, n=6)
        result = PartMiner(k=1).mine(db, 3)
        truth = GSpanMiner().mine(db, 3)
        assert result.patterns.keys() == truth.keys()


class TestResultBookkeeping:
    def test_unit_results_and_times_align(self):
        db = random_database(seed=409, num_graphs=6, n=5)
        result = PartMiner(k=4, unit_support="paper").mine(db, 2)
        assert len(result.unit_results) == 4
        assert len(result.unit_times) == 4
        assert all(t >= 0 for t in result.unit_times)

    def test_node_results_cover_tree(self):
        db = random_database(seed=410, num_graphs=6, n=5)
        result = PartMiner(k=4, unit_support="paper").mine(db, 2)
        assert len(result.node_results) == 7  # full binary tree, 4 leaves

    def test_aggregate_ge_parallel(self):
        db = random_database(seed=411, num_graphs=8, n=6)
        result = PartMiner(k=4, unit_support="paper").mine(db, 2)
        assert result.aggregate_time >= result.parallel_time > 0

    def test_threshold_recorded(self):
        db = random_database(seed=412, num_graphs=10, n=5)
        result = PartMiner(k=2).mine(db, 0.3)
        assert result.threshold == 3

    def test_merge_stats_present_for_internal_nodes(self):
        db = random_database(seed=413, num_graphs=6, n=5)
        result = PartMiner(k=2).mine(db, 2)
        assert (0, 0) in result.merge_stats


class TestParallelUnits:
    def test_parallel_units_matches_serial(self):
        db = random_database(seed=414, num_graphs=8, n=6)
        serial = PartMiner(k=2, unit_support="exact").mine(db, 3)
        parallel = PartMiner(
            k=2, unit_support="exact", parallel_units=True
        ).mine(db, 3)
        assert parallel.patterns.keys() == serial.patterns.keys()

    def test_parallel_units_times_recorded(self):
        db = random_database(seed=415, num_graphs=6, n=5)
        result = PartMiner(k=4, parallel_units=True).mine(db, 2)
        assert len(result.unit_times) == 4
        assert result.aggregate_time > 0

    def test_unit_thresholds_use_k_not_tree_depth(self):
        # k=5 leaves sit at depths 2 and 3; the paper's sup/k must be
        # applied, not sup/2^depth (which would drop to 1 at depth 3).
        db = random_database(seed=416, num_graphs=10, n=5)
        from repro.partition.dbpartition import db_partition

        tree = db_partition(db, 5)
        deepest = max(tree.units(), key=lambda u: u.depth)
        assert deepest.depth == 3
        assert resolve_unit_threshold(deepest, 6, "paper", k=5) == 2
        # Without k, the depth-based fallback over-reduces: ceil(6/8) = 1.
        assert resolve_unit_threshold(deepest, 6, "paper") == 1

"""Tests for the benchmark harness and timing utilities."""

from repro.bench.harness import Experiment, Series, dominates, load_experiment
from repro.bench.timing import Timer, mine_units_in_processes
from repro.core.partminer import resolve_unit_threshold
from repro.mining.gaston import GastonMiner
from repro.partition.dbpartition import db_partition

from .conftest import random_database


class TestSeries:
    def test_add_and_ys(self):
        s = Series("pm")
        s.add(1, 10.0)
        s.add(2, 20.0)
        assert s.ys() == [10.0, 20.0]


class TestExperiment:
    def build(self):
        exp = Experiment("fig_x", "demo", "minsup", "runtime (s)")
        a = exp.new_series("PartMiner")
        a.add(1, 1.5)
        a.add(2, 1.0)
        b = exp.new_series("ADIMINE")
        b.add(1, 2.0)
        b.add(2, 3.0)
        return exp

    def test_format_table_contains_values(self):
        table = self.build().format_table()
        assert "PartMiner" in table
        assert "ADIMINE" in table
        assert "1.500" in table
        assert "fig_x" in table

    def test_format_handles_missing_points(self):
        exp = Experiment("e", "t", "x", "y")
        a = exp.new_series("a")
        a.add(1, 1.0)
        b = exp.new_series("b")
        b.add(2, 2.0)
        table = exp.format_table()
        assert "-" in table

    def test_save_and_load_roundtrip(self, tmp_path):
        exp = self.build()
        exp.notes["dataset"] = "D10T5N5L5I2"
        path = exp.save(tmp_path)
        back = load_experiment(path)
        assert back.exp_id == exp.exp_id
        assert back.notes == exp.notes
        assert [s.name for s in back.series] == ["PartMiner", "ADIMINE"]
        assert back.series[0].points == [(1, 1.5), (2, 1.0)]


class TestDominates:
    def test_dominates(self):
        fast = Series("fast", [(1, 1.0), (2, 1.0)])
        slow = Series("slow", [(1, 2.0), (2, 2.0)])
        assert dominates(fast, slow)
        assert not dominates(slow, fast)

    def test_no_shared_points(self):
        a = Series("a", [(1, 1.0)])
        b = Series("b", [(2, 2.0)])
        assert not dominates(a, b)


class TestTimer:
    def test_measure_accumulates(self):
        timer = Timer()
        with timer.measure("work"):
            sum(range(1000))
        with timer.measure("work"):
            sum(range(1000))
        assert timer["work"] > 0
        assert timer.total() == timer["work"]


class TestProcessPoolMining:
    def test_matches_serial_results(self):
        db = random_database(seed=700, num_graphs=8, n=6)
        tree = db_partition(db, 2)
        units = tree.units()
        thresholds = [
            resolve_unit_threshold(u, 3, "paper") for u in units
        ]
        parallel = mine_units_in_processes(units, thresholds)
        for unit, threshold, got in zip(units, thresholds, parallel):
            want = GastonMiner().mine(unit.database, threshold)
            assert got.keys() == want.keys()

"""Tests for constraint-based mining."""

import pytest

from repro.graph.labeled_graph import LabeledGraph
from repro.mining.constraints import (
    Acyclic,
    AllowedEdgeLabels,
    AllowedVertexLabels,
    ConstrainedMiner,
    MaxDegree,
    MaxEdges,
    MaxVertices,
    MinEdges,
    MinVertices,
    RequiresEdgeLabel,
    RequiresVertexLabel,
)
from repro.mining.gspan import GSpanMiner

from .conftest import path_graph, random_database, star_graph, triangle


class TestIndividualConstraints:
    def test_max_edges(self):
        assert MaxEdges(3).allows(triangle())
        assert not MaxEdges(2).allows(triangle())
        assert MaxEdges(2).anti_monotone

    def test_max_vertices(self):
        assert MaxVertices(3).allows(triangle())
        assert not MaxVertices(2).allows(triangle())

    def test_min_edges_and_vertices(self):
        assert MinEdges(3).allows(triangle())
        assert not MinEdges(4).allows(triangle())
        assert MinVertices(3).allows(triangle())
        assert not MinEdges(1).anti_monotone

    def test_allowed_vertex_labels(self):
        constraint = AllowedVertexLabels({0, 1})
        assert constraint.allows(triangle(labels=(0, 1, 0)))
        assert not constraint.allows(triangle(labels=(0, 2, 0)))

    def test_allowed_edge_labels(self):
        constraint = AllowedEdgeLabels({"x"})
        g = LabeledGraph.from_vertices_and_edges([0, 0], [(0, 1, "x")])
        assert constraint.allows(g)
        h = LabeledGraph.from_vertices_and_edges([0, 0], [(0, 1, "y")])
        assert not constraint.allows(h)

    def test_max_degree(self):
        assert MaxDegree(2).allows(path_graph(4))
        assert not MaxDegree(2).allows(star_graph(3))

    def test_acyclic(self):
        assert Acyclic().allows(path_graph(4))
        assert Acyclic().allows(star_graph(3))
        assert not Acyclic().allows(triangle())

    def test_requires_labels(self):
        assert RequiresVertexLabel(1).allows(star_graph(3, leaf_label=1))
        assert not RequiresVertexLabel(9).allows(triangle())
        g = LabeledGraph.from_vertices_and_edges([0, 0], [(0, 1, "z")])
        assert RequiresEdgeLabel("z").allows(g)
        assert not RequiresEdgeLabel("w").allows(g)


class TestConstrainedMiner:
    def full(self, db, sup=3):
        return GSpanMiner().mine(db, sup)

    @pytest.mark.parametrize(
        "constraints",
        [
            [MaxEdges(2)],
            [MaxVertices(3)],
            [Acyclic()],
            [MaxDegree(2)],
            [MinEdges(2)],
            [MaxEdges(3), MinEdges(2)],
            [AllowedVertexLabels({0, 1})],
            [RequiresVertexLabel(0)],
            [Acyclic(), MaxDegree(2), MinVertices(3)],
        ],
    )
    def test_pushdown_equals_filtering(self, constraints):
        """Anti-monotone pruning must be a pure optimization."""
        db = random_database(seed=1300, num_graphs=10, n=7, extra_edges=2)
        constrained = ConstrainedMiner(constraints).mine(db, 3)
        reference = {
            p.key
            for p in self.full(db)
            if all(c.allows(p.graph) for c in constraints)
        }
        assert constrained.keys() == reference

    def test_supports_preserved(self):
        db = random_database(seed=1301, num_graphs=10, n=6)
        constrained = ConstrainedMiner([MaxEdges(2)]).mine(db, 3)
        full = self.full(db)
        for p in constrained:
            assert p.tids == full.get(p.key).tids

    def test_no_constraints_is_plain_mining(self):
        db = random_database(seed=1302, num_graphs=8, n=6)
        assert (
            ConstrainedMiner([]).mine(db, 3).keys()
            == self.full(db).keys()
        )

    def test_pruning_reduces_work(self):
        """MaxEdges pushdown must visit fewer candidates than full mining."""
        db = random_database(seed=1303, num_graphs=10, n=7, extra_edges=2)
        plain = GSpanMiner()
        plain.mine(db, 2)
        constrained = GSpanMiner(
            growth_filter=MaxEdges(2).allows
        )
        constrained.mine(db, 2)
        assert (
            constrained.stats.candidates_generated
            <= plain.stats.candidates_generated
        )
        assert (
            constrained.stats.patterns_found < plain.stats.patterns_found
        )

"""Tests for the SVG chart renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.bench.harness import Experiment
from repro.bench.plots import (
    SERIES_COLORS,
    _nice_ticks,
    render_line_chart,
    save_plots,
)


def build_experiment(series_specs):
    exp = Experiment("figx", "Demo figure", "minsup", "runtime (s)")
    for name, points in series_specs:
        s = exp.new_series(name)
        for x, y in points:
            s.add(x, y)
    return exp


def parse(svg_text):
    return ET.fromstring(svg_text)


def geometry_ok(svg_text):
    """No mark or text outside the canvas; end labels don't collide."""
    root = parse(svg_text)
    width = float(root.get("width"))
    height = float(root.get("height"))
    labels = []
    for el in root.iter():
        tag = el.tag.split("}")[-1]
        if tag == "circle":
            cx, cy = float(el.get("cx")), float(el.get("cy"))
            assert 0 <= cx <= width and 0 <= cy <= height, (cx, cy)
        elif tag == "text":
            x, y = float(el.get("x")), float(el.get("y"))
            assert 0 <= x <= width and 0 <= y <= height, el.text
            if x > width - 170 and y > 50:
                labels.append(y)
        elif tag == "polyline":
            for point in el.get("points").split():
                px, py = map(float, point.split(","))
                assert -1 <= px <= width + 1 and -1 <= py <= height + 1
    labels.sort()
    for a, b in zip(labels, labels[1:]):
        assert b - a >= 12, "direct labels collide"
    return True


class TestNiceTicks:
    def test_covers_range(self):
        for low, high in [(0, 1.445), (0, 104.8), (0.1, 0.9), (0, 5)]:
            ticks = _nice_ticks(low, high)
            assert ticks[0] <= low
            assert ticks[-1] >= high - 1e-9
            diffs = [b - a for a, b in zip(ticks, ticks[1:])]
            assert all(abs(d - diffs[0]) < 1e-9 for d in diffs)

    def test_degenerate_range(self):
        ticks = _nice_ticks(2.0, 2.0)
        assert ticks[0] <= 2.0 <= ticks[-1]


class TestRenderLineChart:
    def test_valid_svg_with_expected_parts(self):
        exp = build_experiment(
            [
                ("PartMiner", [(1, 0.5), (2, 0.8), (3, 1.4)]),
                ("ADIMINE", [(1, 1.2), (2, 1.1), (3, 1.0)]),
            ]
        )
        svg = render_line_chart(exp)
        root = parse(svg)  # well-formed XML
        assert root.tag.endswith("svg")
        assert svg.count("<polyline") == 2
        assert "PartMiner" in svg and "ADIMINE" in svg
        assert "Demo figure" in svg
        assert SERIES_COLORS[0] in svg and SERIES_COLORS[1] in svg
        assert geometry_ok(svg)

    def test_log_scale_for_wide_ranges(self):
        exp = build_experiment(
            [("PartMiner", [(1, 0.1), (2, 0.5), (3, 110.0)])]
        )
        svg = render_line_chart(exp)
        assert "log scale" in svg
        assert geometry_ok(svg)

    def test_linear_scale_for_narrow_ranges(self):
        exp = build_experiment([("a", [(1, 1.0), (2, 2.0)])])
        assert "log scale" not in render_line_chart(exp)

    def test_tooltips_present_per_point(self):
        exp = build_experiment([("a", [(1, 1.0), (2, 2.0)])])
        svg = render_line_chart(exp)
        assert svg.count("<title>") == 2

    def test_text_escaping(self):
        exp = build_experiment([("a <b> & c", [(1, 1.0), (2, 2.0)])])
        svg = render_line_chart(exp)
        parse(svg)
        assert "a &lt;b&gt; &amp; c" in svg

    def test_fixed_color_assignment(self):
        """Colors follow series position, never get cycled or reshuffled."""
        one = build_experiment([("x", [(1, 1.0), (2, 2.0)])])
        two = build_experiment(
            [("y", [(1, 3.0), (2, 1.0)]), ("x", [(1, 1.0), (2, 2.0)])]
        )
        assert SERIES_COLORS[0] in render_line_chart(one)
        svg = render_line_chart(two)
        assert SERIES_COLORS[0] in svg and SERIES_COLORS[1] in svg

    def test_too_many_series_rejected(self):
        exp = build_experiment(
            [(f"s{i}", [(1, i), (2, i)]) for i in range(1, 8)]
        )
        with pytest.raises(ValueError, match="fixed palette"):
            render_line_chart(exp)

    def test_empty_experiment_rejected(self):
        exp = Experiment("e", "t", "x", "y")
        exp.new_series("empty")
        with pytest.raises(ValueError, match="no data"):
            render_line_chart(exp)

    def test_collision_nudging(self):
        """Series ending at the same value get separated labels."""
        exp = build_experiment(
            [
                ("alpha", [(1, 1.0), (2, 2.0)]),
                ("beta", [(1, 3.0), (2, 2.0)]),
                ("gamma", [(1, 0.5), (2, 2.0)]),
            ]
        )
        assert geometry_ok(render_line_chart(exp))


class TestSavePlots:
    def test_renders_saved_experiments(self, tmp_path):
        exp = build_experiment([("a", [(1, 1.0), (2, 2.0)])])
        exp.save(tmp_path)
        written = save_plots(tmp_path, tmp_path / "out")
        assert len(written) == 1
        assert written[0].suffix == ".svg"
        parse(written[0].read_text())

    def test_skips_wide_experiments(self, tmp_path):
        exp = build_experiment(
            [(f"s{i}", [(1, i)]) for i in range(1, 8)]
        )
        exp.save(tmp_path)
        assert save_plots(tmp_path, tmp_path / "out") == []

    def test_real_results_render_cleanly(self):
        """Every shipped benchmark result must chart without geometry
        faults (the permanent form of the eyeball pass)."""
        from pathlib import Path

        results = Path(__file__).resolve().parent.parent / (
            "benchmarks/results"
        )
        if not list(results.glob("*.json")):
            pytest.skip("no benchmark results present")
        from repro.bench.reporting import load_results

        rendered = 0
        for experiment in load_results(results).values():
            if not any(s.points for s in experiment.series):
                continue
            if len(experiment.series) > len(SERIES_COLORS):
                continue
            assert geometry_ok(render_line_chart(experiment))
            rendered += 1
        assert rendered > 0

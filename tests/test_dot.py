"""Tests for Graphviz DOT export."""

import io

from repro.graph.dot import graph_to_dot, patterns_to_dot, write_dot
from repro.mining.base import Pattern, PatternSet

from .conftest import make_graph, path_graph, triangle


class TestGraphToDot:
    def test_basic_structure(self):
        dot = graph_to_dot(triangle(labels=(1, 2, 3)), name="tri")
        assert dot.startswith('graph "tri" {')
        assert dot.rstrip().endswith("}")
        assert '0 [label="1"];' in dot
        assert "0 -- 1" in dot
        assert dot.count("--") == 3

    def test_highlighted_edges(self):
        dot = graph_to_dot(path_graph(3), highlight_edges=[(1, 0)])
        lines = [l for l in dot.splitlines() if "--" in l]
        assert any("red" in l for l in lines)
        assert sum("red" in l for l in lines) == 1

    def test_label_escaping(self):
        g = make_graph(['say "hi"', "b\\c"], [(0, 1, "e")])
        dot = graph_to_dot(g)
        assert '\\"hi\\"' in dot
        assert "b\\\\c" in dot


class TestPatternsToDot:
    def build(self):
        return PatternSet(
            [
                Pattern.from_graph(triangle(), [0, 1]),
                Pattern.from_graph(path_graph(3), [0, 1, 2]),
            ]
        )

    def test_clusters_per_pattern(self):
        dot = patterns_to_dot(self.build())
        assert dot.count("subgraph cluster_") == 2
        assert 'label="support=2"' in dot
        assert 'label="support=3"' in dot

    def test_max_patterns(self):
        dot = patterns_to_dot(self.build(), max_patterns=1)
        assert dot.count("subgraph cluster_") == 1
        # Ordered by size desc: the triangle (3 edges) wins.
        assert 'label="support=2"' in dot

    def test_node_ids_unique_across_clusters(self):
        dot = patterns_to_dot(self.build())
        node_lines = [
            l.strip()
            for l in dot.splitlines()
            if l.strip().startswith("n") and "--" not in l
        ]
        ids = [l.split()[0] for l in node_lines if "[label=" in l]
        assert len(ids) == len(set(ids))


class TestWriteDot:
    def test_appends_newline(self):
        buffer = io.StringIO()
        write_dot("graph g {}", buffer)
        assert buffer.getvalue().endswith("}\n")

    def test_no_double_newline(self):
        buffer = io.StringIO()
        write_dot("graph g {}\n", buffer)
        assert buffer.getvalue() == "graph g {}\n"

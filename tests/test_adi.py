"""Tests for the ADI structure and the ADIMINE baseline."""

import pytest

from repro.graph.database import GraphDatabase
from repro.mining.adi.adimine import ADIMiner
from repro.mining.adi.index import (
    ADIIndex,
    deserialize_graph,
    serialize_graph,
)
from repro.mining.adi.storage import BlockStorage
from repro.mining.gspan import GSpanMiner

from .conftest import make_graph, random_database, random_graph, triangle
import random


class TestBlockStorage:
    def test_allocate_write_read(self):
        with BlockStorage(page_size=64, cache_pages=2) as storage:
            page = storage.allocate()
            storage.write_page(page, b"hello")
            assert storage.read_page(page)[:5] == b"hello"

    def test_pages_padded_to_size(self):
        with BlockStorage(page_size=32) as storage:
            page = storage.allocate()
            storage.write_page(page, b"x")
            assert len(storage.read_page(page)) == 32

    def test_oversized_write_rejected(self):
        with BlockStorage(page_size=8) as storage:
            page = storage.allocate()
            with pytest.raises(ValueError, match="exceeds page size"):
                storage.write_page(page, b"x" * 9)

    def test_unallocated_page_rejected(self):
        with BlockStorage() as storage:
            with pytest.raises(IndexError):
                storage.read_page(0)
            with pytest.raises(IndexError):
                storage.write_page(3, b"")

    def test_lru_eviction_and_stats(self):
        with BlockStorage(page_size=16, cache_pages=1) as storage:
            p0, p1 = storage.allocate(), storage.allocate()
            storage.write_page(p0, b"a")
            storage.write_page(p1, b"b")  # evicts p0
            storage.stats.reset()
            storage.read_page(p1)
            assert storage.stats.cache_hits == 1
            storage.read_page(p0)
            assert storage.stats.cache_misses == 1
            assert storage.stats.page_reads == 1

    def test_cache_disabled(self):
        with BlockStorage(page_size=16, cache_pages=0) as storage:
            page = storage.allocate()
            storage.write_page(page, b"z")
            storage.read_page(page)
            storage.read_page(page)
            assert storage.stats.page_reads == 2

    def test_truncate_drops_everything(self):
        with BlockStorage() as storage:
            storage.allocate()
            storage.truncate()
            assert storage.num_pages == 0
            with pytest.raises(IndexError):
                storage.read_page(0)


class TestSerialization:
    def test_roundtrip(self):
        rng = random.Random(2)
        for _ in range(10):
            g = random_graph(rng, rng.randrange(2, 9), 3, 5, 4)
            back = deserialize_graph(serialize_graph(g))
            assert back.vertex_labels() == g.vertex_labels()
            assert sorted(back.edges()) == sorted(g.edges())

    def test_roundtrip_no_edges(self):
        g = make_graph([3, 1, 4], [])
        back = deserialize_graph(serialize_graph(g))
        assert back.vertex_labels() == [3, 1, 4]
        assert back.num_edges == 0


class TestADIIndex:
    def test_build_and_fetch(self, medium_db):
        with ADIIndex(BlockStorage(page_size=128)) as index:
            index.build(medium_db)
            assert len(index) == len(medium_db)
            for gid, graph in medium_db:
                fetched = index.fetch_graph(gid)
                assert sorted(fetched.edges()) == sorted(graph.edges())

    def test_multi_page_graphs(self):
        rng = random.Random(6)
        big = random_graph(rng, 40, 30)
        db = GraphDatabase.from_graphs([big])
        with ADIIndex(BlockStorage(page_size=64)) as index:
            index.build(db)
            fetched = index.fetch_graph(0)
            assert sorted(fetched.edges()) == sorted(big.edges())

    def test_edge_table(self):
        db = GraphDatabase.from_graphs([triangle(), triangle()])
        with ADIIndex() as index:
            index.build(db)
            assert index.edge_support((0, 0, 0)) == 2
            assert index.graphs_with_edge((0, 0, 0)) == {0, 1}
            assert index.edge_support((9, 9, 9)) == 0

    def test_unbuilt_access_raises(self):
        with ADIIndex() as index:
            with pytest.raises(RuntimeError, match="stale or unbuilt"):
                index.gids()

    def test_invalidate_forces_rebuild(self, medium_db):
        with ADIIndex() as index:
            index.build(medium_db)
            index.invalidate()
            with pytest.raises(RuntimeError):
                index.fetch_graph(0)
            index.build(medium_db)
            assert index.build_count == 2


class TestADIMiner:
    def test_results_match_gspan(self, medium_db):
        want = GSpanMiner().mine(medium_db, 3)
        with ADIMiner(page_size=128, cache_pages=4) as miner:
            got = miner.mine(medium_db, 3)
        assert got.keys() == want.keys()
        for p in got:
            assert p.tids == want.get(p.key).tids

    def test_index_built_once_for_static_db(self, medium_db):
        with ADIMiner() as miner:
            miner.mine(medium_db, 3)
            miner.mine(medium_db, 2)
            assert miner.stats.index_builds == 1

    def test_update_forces_rebuild_and_remine(self, medium_db):
        with ADIMiner() as miner:
            miner.mine(medium_db, 3)
            updated = medium_db.copy(deep=True)
            updated[0].set_vertex_label(0, 99)
            result = miner.mine_updated(updated, 3)
            assert miner.stats.index_builds == 2
            want = GSpanMiner().mine(updated, 3)
            assert result.keys() == want.keys()

    def test_io_stats_recorded(self, medium_db):
        with ADIMiner(page_size=128, cache_pages=2) as miner:
            miner.mine(medium_db, 3)
            assert miner.stats.graph_fetches > 0
            assert miner.stats.page_reads > 0

"""Tests for the metrics registry (repro.obs.metrics).

Covers series semantics (counter monotonicity, gauge latest-wins,
histogram cumulative buckets), family identity and conflict detection,
the two export shapes (JSON snapshot, Prometheus text exposition), the
kill switch on the hook helpers, concurrent increments, and the
``repro.bench.counters`` shim over the registry-backed perf counters.
"""

from __future__ import annotations

import json
import re
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    MetricsRegistry,
)

# One sample line of exposition format v0.0.4:  name{l="v",...} value
SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]*\")*\})? "
    r"(-?[0-9.e+-]+|\+Inf|-Inf|NaN)$"
)


# ----------------------------------------------------------------------
# Series semantics
# ----------------------------------------------------------------------
class TestSeries:
    def test_counter_monotonic(self):
        reg = MetricsRegistry()
        c = reg.counter("t_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_up_and_down(self):
        reg = MetricsRegistry()
        g = reg.gauge("t_gauge")
        g.set(5)
        g.inc(2)
        g.dec(3)
        assert g.value == 4

    def test_histogram_cumulative_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("t_seconds", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        snap = h.snapshot()
        assert [b["count"] for b in snap["buckets"]] == [1, 3, 4]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(56.05)

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(
            DEFAULT_LATENCY_BUCKETS
        )


# ----------------------------------------------------------------------
# Families
# ----------------------------------------------------------------------
class TestFamilies:
    def test_rerequest_returns_same_series(self):
        reg = MetricsRegistry()
        assert reg.counter("t_total") is reg.counter("t_total")

    def test_labeled_family_dispenses_per_vector(self):
        reg = MetricsRegistry()
        fam = reg.counter("t_total", labels=("kind",))
        a = fam.labels(kind="a")
        a.inc()
        assert fam.labels(kind="a") is a
        assert fam.labels(kind="b") is not a
        assert fam.labels(kind="b").value == 0

    def test_label_mismatch_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("t_total", labels=("kind",))
        with pytest.raises(ValueError):
            fam.labels(other="x")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("t_total")
        with pytest.raises(ValueError):
            reg.gauge("t_total")

    def test_label_set_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("t_total", labels=("kind",))
        with pytest.raises(ValueError):
            reg.counter("t_total", labels=("other",))

    def test_invalid_name_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("2bad")
        with pytest.raises(ValueError):
            reg.counter("no spaces")

    def test_unlabeled_access_on_labeled_family_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("t_total", labels=("kind",))
        with pytest.raises(ValueError):
            fam.unlabeled


# ----------------------------------------------------------------------
# Export shapes
# ----------------------------------------------------------------------
class TestExport:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("t_total", "things done", labels=("kind",)).labels(
            kind="a"
        ).inc(3)
        reg.gauge("t_gauge", "current level").set(1.5)
        h = reg.histogram("t_seconds", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_snapshot_round_trips_through_json(self):
        reg = self._populated()
        snap = json.loads(json.dumps(reg.snapshot()))
        assert snap["t_total"]["series"][0] == {
            "labels": {"kind": "a"},
            "value": 3,
        }
        assert snap["t_gauge"]["series"][0]["value"] == 1.5
        hist = snap["t_seconds"]["series"][0]["value"]
        assert hist["count"] == 2
        assert [b["count"] for b in hist["buckets"]] == [1, 2]

    def test_prometheus_lines_all_parse(self):
        page = self._populated().render_prometheus()
        assert page.endswith("\n")
        for line in page.strip().splitlines():
            if line.startswith("# HELP") or line.startswith("# TYPE"):
                continue
            assert SAMPLE_RE.match(line), line

    def test_prometheus_histogram_shape(self):
        page = self._populated().render_prometheus()
        assert 't_seconds_bucket{le="0.1"} 1' in page
        assert 't_seconds_bucket{le="1"} 2' in page
        assert 't_seconds_bucket{le="+Inf"} 2' in page
        assert "t_seconds_count 2" in page
        assert "# TYPE t_seconds histogram" in page

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.counter("t_total", labels=("path",)).labels(
            path='a"b\\c\nd'
        ).inc()
        page = reg.render_prometheus()
        assert '{path="a\\"b\\\\c\\nd"}' in page

    def test_integral_floats_render_without_point(self):
        reg = MetricsRegistry()
        reg.counter("t_total").inc()
        assert "t_total 1\n" in reg.render_prometheus()

    def test_reset_zeroes_every_series(self):
        reg = self._populated()
        reg.reset()
        snap = reg.snapshot()
        assert snap["t_total"]["series"][0]["value"] == 0
        assert snap["t_seconds"]["series"][0]["value"]["count"] == 0

    @settings(max_examples=50, deadline=None)
    @given(
        increments=st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=0, max_value=100),
            ),
            max_size=30,
        )
    )
    def test_snapshot_matches_ledger(self, increments):
        """Property: snapshot equals an independently kept ledger, and
        survives a JSON round trip exactly."""
        reg = MetricsRegistry()
        fam = reg.counter("t_total", labels=("kind",))
        ledger: dict[str, int] = {}
        for kind, amount in increments:
            fam.labels(kind=kind).inc(amount)
            ledger[kind] = ledger.get(kind, 0) + amount
        snap = json.loads(json.dumps(reg.snapshot()))
        got = {
            s["labels"]["kind"]: s["value"]
            for s in snap["t_total"]["series"]
        }
        assert got == ledger


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
def test_concurrent_increments_lose_nothing():
    reg = MetricsRegistry()
    fam = reg.counter("t_total", labels=("kind",))
    hist = reg.histogram("t_seconds")
    threads = 8
    per_thread = 2000

    def worker(kind):
        series = fam.labels(kind=kind)
        for _ in range(per_thread):
            series.inc()
            hist.observe(0.01)

    pool = [
        threading.Thread(target=worker, args=(f"k{i % 3}",))
        for i in range(threads)
    ]
    for t in pool:
        t.start()
    for t in pool:
        t.join()
    total = sum(s.value for _, s in fam.series())
    assert total == threads * per_thread
    assert hist.count == threads * per_thread


# ----------------------------------------------------------------------
# Hook helpers + kill switch
# ----------------------------------------------------------------------
class TestHooks:
    def test_observe_phase_lands_in_global_registry(self):
        obs_metrics.observe_phase("test_phase_xyz", 0.2)
        snap = obs_metrics.registry().snapshot()
        series = snap["repro_phase_seconds"]["series"]
        mine = [
            s for s in series if s["labels"]["phase"] == "test_phase_xyz"
        ]
        assert mine and mine[0]["value"]["count"] >= 1

    def test_hooks_are_noops_when_disabled(self):
        reg = obs_metrics.registry()
        fam = reg.counter(
            "repro_runtime_attempts_total",
            labels=("outcome",),
        )
        before = fam.labels(outcome="test_off").value
        with obs.disabled():
            obs_metrics.count_runtime_attempt("test_off")
        assert fam.labels(outcome="test_off").value == before
        obs_metrics.count_runtime_attempt("test_off")
        assert fam.labels(outcome="test_off").value == before + 1


# ----------------------------------------------------------------------
# The perf-counter bridge
# ----------------------------------------------------------------------
class TestPerfBridge:
    def test_bench_counters_shim_is_the_perf_module(self):
        from repro.bench import counters as bench_counters
        from repro.perf import counters as perf_counters

        assert bench_counters.COUNTERS is perf_counters.COUNTERS

    def test_live_counters_back_onto_registry(self):
        from repro.perf.counters import COUNTERS, FAMILY

        before = COUNTERS.vf2_calls
        COUNTERS.inc("vf2_calls")
        assert COUNTERS.vf2_calls == before + 1
        fam = obs_metrics.registry().counter(
            FAMILY, labels=("counter",)
        )
        assert fam.labels(counter="vf2_calls").value == before + 1

    def test_legacy_assignment_still_works(self):
        from repro.perf.counters import COUNTERS

        saved = COUNTERS.quick_rejects
        try:
            COUNTERS.quick_rejects = 41
            COUNTERS.inc("quick_rejects")
            assert COUNTERS.quick_rejects == 42
            assert COUNTERS.snapshot().quick_rejects == 42
        finally:
            COUNTERS.quick_rejects = saved

    def test_perf_increments_ignore_obs_switch(self):
        from repro.perf.counters import COUNTERS

        before = COUNTERS.plan_hits
        with obs.disabled():
            COUNTERS.inc("plan_hits")
        assert COUNTERS.plan_hits == before + 1

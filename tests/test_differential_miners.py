"""Differential testing across every miner in the library.

On randomized small databases (fixed seeds + Hypothesis-generated), all
monomorphic miners — gSpan, Gaston, FSG and the brute-force oracle — must
return *canonically identical* frequent sets (same keys, same TID lists)
at several thresholds, both standalone and as PartMiner unit miners.

AGM mines under **induced** semantics, so its frequent set is a different
mathematical object; it is differentially checked against its own oracle
(:class:`InducedBruteForceMiner`) and cross-checked via the containment
every induced pattern must satisfy monomorphically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partminer import PartMiner
from repro.mining.agm import AGMMiner, InducedBruteForceMiner
from repro.mining.bruteforce import BruteForceMiner
from repro.mining.fsg import FSGMiner
from repro.mining.gaston import GastonMiner
from repro.mining.gspan import GSpanMiner

from .conftest import random_database
from .test_properties import databases

MONOMORPHIC_MINERS = {
    "gspan": GSpanMiner,
    "gaston": GastonMiner,
    "fsg": FSGMiner,
    "bruteforce": BruteForceMiner,
}

SEEDS = (101, 202, 303)
THRESHOLDS = (2, 3, 4)


def small_db(seed: int):
    return random_database(seed=seed, num_graphs=7, n=6, extra_edges=1)


def assert_same_patterns(got, want, context=""):
    """Same canonical keys AND same TID lists."""
    assert got.keys() == want.keys(), (
        f"{context}: keys differ "
        f"(+{len(got.keys() - want.keys())} / "
        f"-{len(want.keys() - got.keys())})"
    )
    for pattern in got:
        assert pattern.tids == want.get(pattern.key).tids, context


# ----------------------------------------------------------------------
class TestStandalone:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", sorted(MONOMORPHIC_MINERS))
    def test_monomorphic_miners_agree_with_oracle(self, seed, name):
        db = small_db(seed)
        oracle = BruteForceMiner()
        for threshold in THRESHOLDS:
            want = oracle.mine(db, threshold)
            got = MONOMORPHIC_MINERS[name]().mine(db, threshold)
            assert_same_patterns(
                got, want, f"{name} seed={seed} sup={threshold}"
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_agm_agrees_with_induced_oracle(self, seed):
        db = small_db(seed)
        for threshold in THRESHOLDS:
            want = InducedBruteForceMiner().mine(db, threshold)
            got = AGMMiner().mine(db, threshold)
            assert got.keys() == want.keys(), f"seed={seed} sup={threshold}"
            for pattern in got:
                assert pattern.tids == want.get(pattern.key).tids

    @pytest.mark.parametrize("seed", SEEDS)
    def test_agm_patterns_contained_in_monomorphic_result(self, seed):
        """Bridge between the two semantics: every induced-frequent
        edge-pattern is monomorphically frequent with a superset TID
        list."""
        db = small_db(seed)
        agm = AGMMiner().mine(db, 3)
        mono = GSpanMiner().mine(db, 3)
        for pattern in agm:
            if pattern.graph.num_edges == 0:
                continue  # single vertices: outside the edge-set universe
            match = mono.get(pattern.key)
            assert match is not None
            assert pattern.tids <= match.tids

    @settings(max_examples=12, deadline=None)
    @given(db=databases(max_graphs=5, max_vertices=5),
           threshold=st.integers(2, 3))
    def test_hypothesis_differential(self, db, threshold):
        """Property form: arbitrary small databases, all four miners."""
        want = BruteForceMiner().mine(db, threshold)
        for name, factory in MONOMORPHIC_MINERS.items():
            if name == "bruteforce":
                continue
            assert_same_patterns(
                factory().mine(db, threshold), want, f"{name} sup={threshold}"
            )


# ----------------------------------------------------------------------
class TestAsPartMinerUnitMiners:
    """PartMiner in lossless mode is miner-agnostic: any correct
    monomorphic unit miner must produce the same final answer."""

    @pytest.mark.parametrize("seed", SEEDS[:2])
    @pytest.mark.parametrize("name", sorted(MONOMORPHIC_MINERS))
    def test_unit_miner_equivalence(self, seed, name):
        db = small_db(seed)
        for threshold in (2, 3):
            want = BruteForceMiner().mine(db, threshold)
            result = PartMiner(
                k=2,
                unit_support="exact",
                miner_factory=MONOMORPHIC_MINERS[name],
            ).mine(db, threshold)
            assert_same_patterns(
                result.patterns, want,
                f"partminer[{name}] seed={seed} sup={threshold}",
            )

    @pytest.mark.parametrize("name", sorted(MONOMORPHIC_MINERS))
    def test_unit_miner_equivalence_k4(self, name):
        db = small_db(404)
        want = BruteForceMiner().mine(db, 3)
        result = PartMiner(
            k=4,
            unit_support="exact",
            miner_factory=MONOMORPHIC_MINERS[name],
        ).mine(db, 3)
        assert_same_patterns(result.patterns, want, f"k=4 {name}")

    def test_agm_is_not_a_valid_unit_miner(self):
        """Documenting the exclusion: AGM's induced supports undercount
        monomorphic supports, so PartMiner's merge-join (which assumes
        monomorphic TID lists) may lose patterns — AGM is deliberately
        not part of the unit-miner equivalence class."""
        db = small_db(505)
        want = BruteForceMiner().mine(db, 2)
        result = PartMiner(
            k=2, unit_support="exact", miner_factory=AGMMiner
        ).mine(db, 2)
        # Soundness still holds (nothing invented)…
        assert result.patterns.keys() <= want.keys()

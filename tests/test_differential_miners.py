"""Differential testing across every miner in the library.

On randomized small databases (fixed seeds + Hypothesis-generated), all
monomorphic miners — gSpan, Gaston, FSG and the brute-force oracle — must
return *canonically identical* frequent sets (same keys, same TID lists)
at several thresholds, both standalone and as PartMiner unit miners.

AGM mines under **induced** semantics, so its frequent set is a different
mathematical object; it is differentially checked against its own oracle
(:class:`InducedBruteForceMiner`) and cross-checked via the containment
every induced pattern must satisfy monomorphically.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partminer import PartMiner
from repro.mining.agm import AGMMiner, InducedBruteForceMiner
from repro.mining.bruteforce import BruteForceMiner
from repro.mining.fsg import FSGMiner
from repro.mining.gaston import GastonMiner
from repro.mining.gspan import GSpanMiner

from .conftest import random_database
from .test_properties import databases

MONOMORPHIC_MINERS = {
    "gspan": GSpanMiner,
    "gaston": GastonMiner,
    "fsg": FSGMiner,
    "bruteforce": BruteForceMiner,
}

SEEDS = (101, 202, 303)
THRESHOLDS = (2, 3, 4)


def small_db(seed: int):
    return random_database(seed=seed, num_graphs=7, n=6, extra_edges=1)


def assert_same_patterns(got, want, context=""):
    """Same canonical keys AND same TID lists."""
    assert got.keys() == want.keys(), (
        f"{context}: keys differ "
        f"(+{len(got.keys() - want.keys())} / "
        f"-{len(want.keys() - got.keys())})"
    )
    for pattern in got:
        assert pattern.tids == want.get(pattern.key).tids, context


# ----------------------------------------------------------------------
class TestStandalone:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", sorted(MONOMORPHIC_MINERS))
    def test_monomorphic_miners_agree_with_oracle(self, seed, name):
        db = small_db(seed)
        oracle = BruteForceMiner()
        for threshold in THRESHOLDS:
            want = oracle.mine(db, threshold)
            got = MONOMORPHIC_MINERS[name]().mine(db, threshold)
            assert_same_patterns(
                got, want, f"{name} seed={seed} sup={threshold}"
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_agm_agrees_with_induced_oracle(self, seed):
        db = small_db(seed)
        for threshold in THRESHOLDS:
            want = InducedBruteForceMiner().mine(db, threshold)
            got = AGMMiner().mine(db, threshold)
            assert got.keys() == want.keys(), f"seed={seed} sup={threshold}"
            for pattern in got:
                assert pattern.tids == want.get(pattern.key).tids

    @pytest.mark.parametrize("seed", SEEDS)
    def test_agm_patterns_contained_in_monomorphic_result(self, seed):
        """Bridge between the two semantics: every induced-frequent
        edge-pattern is monomorphically frequent with a superset TID
        list."""
        db = small_db(seed)
        agm = AGMMiner().mine(db, 3)
        mono = GSpanMiner().mine(db, 3)
        for pattern in agm:
            if pattern.graph.num_edges == 0:
                continue  # single vertices: outside the edge-set universe
            match = mono.get(pattern.key)
            assert match is not None
            assert pattern.tids <= match.tids

    @settings(max_examples=12, deadline=None)
    @given(db=databases(max_graphs=5, max_vertices=5),
           threshold=st.integers(2, 3))
    def test_hypothesis_differential(self, db, threshold):
        """Property form: arbitrary small databases, all four miners."""
        want = BruteForceMiner().mine(db, threshold)
        for name, factory in MONOMORPHIC_MINERS.items():
            if name == "bruteforce":
                continue
            assert_same_patterns(
                factory().mine(db, threshold), want, f"{name} sup={threshold}"
            )


# ----------------------------------------------------------------------
class TestAsPartMinerUnitMiners:
    """PartMiner in lossless mode is miner-agnostic: any correct
    monomorphic unit miner must produce the same final answer."""

    @pytest.mark.parametrize("seed", SEEDS[:2])
    @pytest.mark.parametrize("name", sorted(MONOMORPHIC_MINERS))
    def test_unit_miner_equivalence(self, seed, name):
        db = small_db(seed)
        for threshold in (2, 3):
            want = BruteForceMiner().mine(db, threshold)
            result = PartMiner(
                k=2,
                unit_support="exact",
                miner_factory=MONOMORPHIC_MINERS[name],
            ).mine(db, threshold)
            assert_same_patterns(
                result.patterns, want,
                f"partminer[{name}] seed={seed} sup={threshold}",
            )

    @pytest.mark.parametrize("name", sorted(MONOMORPHIC_MINERS))
    def test_unit_miner_equivalence_k4(self, name):
        db = small_db(404)
        want = BruteForceMiner().mine(db, 3)
        result = PartMiner(
            k=4,
            unit_support="exact",
            miner_factory=MONOMORPHIC_MINERS[name],
        ).mine(db, 3)
        assert_same_patterns(result.patterns, want, f"k=4 {name}")

    def test_agm_is_not_a_valid_unit_miner(self):
        """Documenting the exclusion: AGM's induced supports undercount
        monomorphic supports, so PartMiner's merge-join (which assumes
        monomorphic TID lists) may lose patterns — AGM is deliberately
        not part of the unit-miner equivalence class."""
        db = small_db(505)
        want = BruteForceMiner().mine(db, 2)
        result = PartMiner(
            k=2, unit_support="exact", miner_factory=AGMMiner
        ).mine(db, 2)
        # Soundness still holds (nothing invented)…
        assert result.patterns.keys() <= want.keys()


# ----------------------------------------------------------------------
# The acceleration matrix: every accel mode, identical answers.
# ----------------------------------------------------------------------
class TestAccelMatrix:
    """The acceleration layer is an *optimization*, never a semantic:
    accel off, match plans only, plans + flat kernels (per-graph
    dispatch), plans + flat + the batched scan kernel, and the full
    stack over shared-memory workers must all mine byte-identical
    pattern sets.

    The matrix is the lockdown for the flat-array kernels
    (:mod:`repro.perf.fastmatch`), the batched scan kernel with its
    minsup early exits (:mod:`repro.perf.batchscan`) and the cs/0112007
    join bound wired into :mod:`repro.core.mergejoin` — any unsound
    shortcut in any of them shows up here as a divergence from the
    accel-off baseline."""

    MODES = ("off", "plans", "flat", "flat+batch", "flat+shm")

    @staticmethod
    def mine_in_mode(mode: str, db, threshold: int):
        from repro import perf
        from repro.runtime import RuntimeConfig

        if mode == "off":
            with perf.disabled():
                return PartMiner(k=2, unit_support="exact").mine(
                    db, threshold
                )
        if mode == "plans":
            with perf.flat_disabled():
                return PartMiner(k=2, unit_support="exact").mine(
                    db, threshold
                )
        if mode == "flat":
            with perf.batch_disabled():
                return PartMiner(k=2, unit_support="exact").mine(
                    db, threshold
                )
        if mode == "flat+batch":
            return PartMiner(k=2, unit_support="exact").mine(db, threshold)
        if mode == "flat+shm":
            return PartMiner(
                k=2,
                unit_support="exact",
                parallel_units=True,
                runtime=RuntimeConfig(max_workers=2, shared_db=True),
            ).mine(db, threshold)
        raise AssertionError(mode)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_modes_agree_with_each_other_and_the_oracle(self, seed):
        db = small_db(seed)
        for threshold in (2, 3):
            want = BruteForceMiner().mine(db, threshold)
            for mode in self.MODES:
                got = self.mine_in_mode(mode, db, threshold).patterns
                assert_same_patterns(
                    got, want, f"accel[{mode}] seed={seed} sup={threshold}"
                )

    def test_shared_memory_mode_actually_uses_segments(self):
        """The fourth matrix column must not silently degrade to pickles
        (which would make its column vacuous)."""
        from repro.perf import flatgraph
        from repro.perf.counters import COUNTERS

        db = small_db(SEEDS[0])
        published_before = COUNTERS.shm_publishes
        attached_before = COUNTERS.shm_attaches
        self.mine_in_mode("flat+shm", db, 2)
        assert COUNTERS.shm_publishes > published_before
        assert COUNTERS.shm_attaches > attached_before
        assert flatgraph.live_segments() == []  # all destroyed after

    @pytest.mark.parametrize("name", ("gspan", "gaston", "fsg"))
    def test_standalone_miners_are_mode_invariant(self, name):
        """Unit miners run inside every mode too — their answers must not
        depend on the accel state they execute under."""
        from repro import perf

        db = small_db(SEEDS[1])
        want = BruteForceMiner().mine(db, 3)
        with perf.disabled():
            off = MONOMORPHIC_MINERS[name]().mine(db, 3)
        with perf.flat_disabled():
            plans = MONOMORPHIC_MINERS[name]().mine(db, 3)
        with perf.batch_disabled():
            flat = MONOMORPHIC_MINERS[name]().mine(db, 3)
        batch = MONOMORPHIC_MINERS[name]().mine(db, 3)
        for got, mode in (
            (off, "off"),
            (plans, "plans"),
            (flat, "flat"),
            (batch, "flat+batch"),
        ):
            assert_same_patterns(got, want, f"{name}[{mode}]")


# ----------------------------------------------------------------------
# Soundness of the cs/0112007 join bound: exhaustive replay.
# ----------------------------------------------------------------------
class TestBoundPruningSoundness:
    """merge_join skips a whole join level when the TID-intersection
    bound proves every candidate infrequent.  Each skip records its live
    inputs in ``stats.extras['skipped_join_levels']``; here every skipped
    level is re-joined *without* the bound and every candidate's support
    is counted exhaustively — zero frequent patterns may hide in a
    skipped level, ever."""

    @staticmethod
    def tree_nodes(tree):
        nodes = {}

        def walk(node):
            nodes[(node.depth, node.index)] = node
            for child in node.children or ():
                walk(child)

        walk(tree.root)
        return nodes

    @pytest.mark.parametrize("seed", SEEDS)
    def test_skipped_levels_contain_no_frequent_patterns(self, seed):
        from repro.core.join import join_patterns
        from repro.graph.isomorphism import count_support

        db = small_db(seed)
        replayed_levels = replayed_candidates = 0
        for threshold in (2, 3):
            result = PartMiner(k=2, unit_support="exact").mine(
                db, threshold
            )
            nodes = self.tree_nodes(result.tree)
            for node_key, stats in result.merge_stats.items():
                dataset = nodes[node_key].database
                for record in stats.extras.get("skipped_join_levels", []):
                    replayed_levels += 1
                    # Re-generate the level's candidates with the bound
                    # off (min_bound=0, empty seen: *every* candidate).
                    candidates = {}
                    for a, b in record["inputs"]:
                        for key, (graph, _bound) in join_patterns(
                            a, b, set()
                        ).items():
                            candidates.setdefault(key, graph)
                    for key, graph in candidates.items():
                        support, _tids = count_support(
                            graph, dataset, key=key
                        )
                        assert support < record["threshold"], (
                            f"seed={seed} sup={threshold} node={node_key} "
                            f"size={record['size']}: skipped level hides a "
                            f"frequent pattern {key}"
                        )
                        replayed_candidates += 1
        # The test must not pass vacuously: these workloads are known to
        # trigger skips (and most skipped levels still join candidates).
        assert replayed_levels > 0

    def test_pair_pruning_never_changes_the_answer(self):
        """The finer-grained prune (join_patterns min_bound) is covered
        by direct comparison: with and without the bound, the surviving
        candidate keys that can reach the threshold are identical."""
        from repro.core.join import join_patterns

        db = small_db(SEEDS[0])
        threshold = 2
        result = PartMiner(k=2, unit_support="exact").mine(db, threshold)
        patterns = [p for p in result.patterns if p.size == 2]
        if len(patterns) < 2:
            pytest.skip("workload too small to join")
        unbounded = join_patterns(patterns, patterns, set())
        bounded = join_patterns(
            patterns, patterns, set(), min_bound=threshold
        )
        assert set(bounded) <= set(unbounded)
        for key, (graph, bound) in unbounded.items():
            if key not in bounded:
                # Pruned pairs: every surviving record of the candidate
                # must have been below the bound.
                assert len(bound) < threshold

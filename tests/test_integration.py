"""End-to-end integration tests crossing all subsystems."""

import pytest

from repro import (
    ADIMiner,
    GSpanMiner,
    GastonMiner,
    IncrementalPartMiner,
    PartMiner,
    UpdateGenerator,
    generate_dataset,
    hot_vertex_assignment,
)
from repro.graph import io
from repro.partition.graphpart import GraphPartitioner
from repro.partition.metis import MetisPartitioner
from repro.partition.weights import PARTITION1, PARTITION2, PARTITION3


@pytest.fixture(scope="module")
def synthetic_db():
    return generate_dataset("D40T10N8L12I4", seed=13)


class TestStaticPipeline:
    def test_all_miners_agree(self, synthetic_db):
        sup = 0.2
        gspan = GSpanMiner().mine(synthetic_db, sup)
        gaston = GastonMiner().mine(synthetic_db, sup)
        with ADIMiner() as adi:
            adimine = adi.mine(synthetic_db, sup)
        assert gspan.keys() == gaston.keys() == adimine.keys()

    def test_partminer_all_criteria_sound(self, synthetic_db):
        truth = GSpanMiner().mine(synthetic_db, 0.2)
        for weights in (PARTITION1, PARTITION2, PARTITION3):
            result = PartMiner(
                k=2, partitioner=GraphPartitioner(weights)
            ).mine(synthetic_db, 0.2)
            assert result.patterns.keys() <= truth.keys()
            recall = len(result.patterns.keys() & truth.keys()) / len(truth)
            assert recall >= 0.9, f"{weights} recall {recall}"

    def test_partminer_with_metis(self, synthetic_db):
        truth = GSpanMiner().mine(synthetic_db, 0.2)
        result = PartMiner(k=2, partitioner=MetisPartitioner()).mine(
            synthetic_db, 0.2
        )
        assert result.patterns.keys() <= truth.keys()

    def test_roundtrip_through_disk(self, synthetic_db, tmp_path):
        path = tmp_path / "db.tve"
        io.write_database(synthetic_db, path)
        reloaded = io.read_database(path)
        assert (
            GSpanMiner().mine(reloaded, 0.25).keys()
            == GSpanMiner().mine(synthetic_db, 0.25).keys()
        )


class TestDynamicPipeline:
    def test_full_dynamic_scenario(self, synthetic_db):
        """Generate -> mine -> update x2 -> incremental == full re-mine.

        Uses exact unit support + recheck to assert strict equality; the
        heuristic modes are covered statistically elsewhere.
        """
        ufreq = hot_vertex_assignment(synthetic_db, 0.2, seed=3)
        inc = IncrementalPartMiner(
            k=2, unit_support="exact", recheck_known=True, max_size=4
        )
        inc.initial_mine(synthetic_db, 0.25, ufreq=ufreq)
        gen = UpdateGenerator(8, 8, seed=4)
        for kind in ("relabel", "structural"):
            updates = gen.generate(inc.database, inc.ufreq, 0.3, 1, kind)
            result = inc.apply_updates(updates)
            truth = GSpanMiner(max_size=4).mine(
                inc.database, inc.database.absolute_support(0.25)
            )
            assert result.patterns.keys() == truth.keys()

    def test_incpartminer_beats_adimine_on_work(self, synthetic_db):
        """The headline claim, in work terms: after a small update batch,
        IncPartMiner re-mines a subset of units while ADIMINE rebuilds and
        re-mines everything."""
        ufreq = hot_vertex_assignment(synthetic_db, 0.2, seed=5)
        inc = IncrementalPartMiner(k=4, unit_support="paper")
        inc.initial_mine(synthetic_db, 0.25, ufreq=ufreq)

        with ADIMiner() as adi:
            adi.mine(synthetic_db, 0.25)

            gen = UpdateGenerator(8, 8, seed=6)
            updates = gen.generate(inc.database, inc.ufreq, 0.2, 1, "mixed")
            result = inc.apply_updates(updates)

            adi_result = adi.mine_updated(inc.database, 0.25)
            assert adi.stats.index_builds == 2  # full rebuild forced

        assert result.stats.units_remined <= 4
        # IncPartMiner output is sound w.r.t. the exact answer.
        assert result.patterns.keys() <= adi_result.keys() or (
            len(result.patterns.keys() - adi_result.keys())
            <= 0.1 * len(adi_result)
        )


class TestClassificationConsistency:
    def test_uf_fi_if_relative_to_exact_sets(self, synthetic_db):
        ufreq = hot_vertex_assignment(synthetic_db, 0.2, seed=7)
        inc = IncrementalPartMiner(
            k=2, unit_support="exact", recheck_known=True, max_size=3
        )
        initial = inc.initial_mine(synthetic_db, 0.25, ufreq=ufreq)
        old_keys = initial.patterns.keys()
        gen = UpdateGenerator(8, 8, seed=8)
        updates = gen.generate(inc.database, inc.ufreq, 0.4, 2, "mixed")
        result = inc.apply_updates(updates)
        new_truth = GSpanMiner(max_size=3).mine(
            inc.database, inc.database.absolute_support(0.25)
        )
        assert result.became_frequent.keys() == new_truth.keys() - old_keys
        assert result.became_infrequent.keys() == old_keys - new_truth.keys()
        assert result.unchanged.keys() == old_keys & new_truth.keys()


class TestStreamedEpochs:
    def test_stream_driven_incremental_session(self, synthetic_db):
        """Epochs from an UpdateStream keep IncPartMiner exact and sound."""
        from repro.mining.validate import validate
        from repro.updates.stream import UpdateStream

        ufreq = hot_vertex_assignment(synthetic_db, 0.2, seed=11)
        miner = IncrementalPartMiner(
            k=2, unit_support="exact", recheck_known=True, max_size=3
        )
        miner.initial_mine(synthetic_db, 0.25, ufreq=ufreq)
        stream = UpdateStream(
            miner.database,
            ufreq,
            num_labels=8,
            fraction_graphs=0.25,
            drift=0.5,
            seed=12,
        )
        for _, batch in stream.batches(2):
            result = miner.apply_updates(batch)
            report = validate(result.patterns, miner.database)
            assert report.ok, report.summary()

    def test_selective_remine_in_streamed_session(self, synthetic_db):
        from repro.updates.stream import UpdateStream

        ufreq = hot_vertex_assignment(synthetic_db, 0.2, seed=13)
        miner = IncrementalPartMiner(
            k=4,
            unit_support="exact",
            recheck_known=True,
            unit_remine="selective",
            max_size=3,
        )
        miner.initial_mine(synthetic_db, 0.25, ufreq=ufreq)
        stream = UpdateStream(
            miner.database, ufreq, num_labels=8,
            fraction_graphs=0.2, seed=14,
        )
        for _, batch in stream.batches(2):
            result = miner.apply_updates(batch)
            truth = GSpanMiner(max_size=3).mine(
                miner.database, miner.database.absolute_support(0.25)
            )
            assert result.patterns.keys() == truth.keys()

"""Tests for the classical random graph models."""

import random

import pytest

from repro.datagen.random_models import (
    erdos_renyi,
    preferential_attachment,
    random_model_database,
    ring_lattice,
)
from repro.mining.gaston import GastonMiner
from repro.mining.gspan import GSpanMiner


class TestErdosRenyi:
    def test_connected_by_default(self):
        rng = random.Random(1)
        for _ in range(10):
            g = erdos_renyi(8, 0.1, 3, rng)
            assert g.is_connected()
            assert g.num_vertices == 8

    def test_p_zero_gives_tree(self):
        g = erdos_renyi(6, 0.0, 3, random.Random(2))
        assert g.num_edges == 5

    def test_p_one_gives_complete(self):
        g = erdos_renyi(5, 1.0, 3, random.Random(3))
        assert g.num_edges == 10

    def test_disconnected_allowed(self):
        g = erdos_renyi(10, 0.0, 3, random.Random(4), connected=False)
        assert g.num_edges == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi(0, 0.5, 3, random.Random(0))
        with pytest.raises(ValueError):
            erdos_renyi(5, 1.5, 3, random.Random(0))


class TestPreferentialAttachment:
    def test_connected_and_sized(self):
        rng = random.Random(5)
        g = preferential_attachment(20, 2, 3, rng)
        assert g.num_vertices == 20
        assert g.is_connected()

    def test_heavy_tail(self):
        """Hubs emerge: max degree well above the median."""
        rng = random.Random(6)
        g = preferential_attachment(60, 2, 3, rng)
        degrees = sorted(g.degree(v) for v in g.vertices())
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            preferential_attachment(1, 2, 3, random.Random(0))


class TestCommunityLabels:
    def _dump(self, graph):
        from repro.graph.io import dumps
        from repro.graph.database import GraphDatabase

        return dumps(GraphDatabase.from_graphs([graph]))

    def test_seed_deterministic(self):
        a = preferential_attachment(
            80, 2, 12, random.Random(9), communities=4, mixing=0.1
        )
        b = preferential_attachment(
            80, 2, 12, random.Random(9), communities=4, mixing=0.1
        )
        assert self._dump(a) == self._dump(b)

    def test_heavy_tail_survives_communities(self):
        # Communities only touch labels; the attachment process stays
        # preferential, so hubs still emerge.
        g = preferential_attachment(
            60, 2, 12, random.Random(6), communities=4
        )
        degrees = sorted(g.degree(v) for v in g.vertices())
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]
        assert g.is_connected()

    def test_labels_cluster_by_block(self):
        # With zero mixing, a vertex's label falls in its community's
        # slice of the domain: community = vertex % communities,
        # slice width = num_labels // communities.
        g = preferential_attachment(
            100, 2, 12, random.Random(7), communities=4, mixing=0.0
        )
        width = 12 // 4
        for v in range(g.num_vertices):
            base = (v % 4) * width
            assert base <= g.vertex_label(v) < base + width

    def test_mixing_escapes_blocks(self):
        g = preferential_attachment(
            200, 2, 12, random.Random(8), communities=4, mixing=1.0
        )
        escaped = sum(
            1
            for v in range(g.num_vertices)
            if not (
                (v % 4) * 3 <= g.vertex_label(v) < (v % 4) * 3 + 3
            )
        )
        assert escaped > 0

    def test_database_builder_passes_communities(self):
        a = random_model_database(
            "ba", 3, 40, num_labels=12, seed=5, communities=4
        )
        b = random_model_database(
            "ba", 3, 40, num_labels=12, seed=5, communities=4
        )
        from repro.graph.io import dumps

        assert dumps(a) == dumps(b)


class TestRingLattice:
    def test_no_rewiring_is_regular(self):
        g = ring_lattice(10, 2, 0.0, 3, random.Random(7))
        assert all(g.degree(v) == 4 for v in g.vertices())

    def test_rewiring_changes_structure(self):
        base = ring_lattice(12, 2, 0.0, 3, random.Random(8))
        rewired = ring_lattice(12, 2, 0.9, 3, random.Random(8))
        assert sorted(base.edges()) != sorted(rewired.edges())

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ring_lattice(2, 1, 0.0, 3, random.Random(0))


class TestRandomModelDatabase:
    @pytest.mark.parametrize("model", ["er", "ba", "ws"])
    def test_database_shape(self, model):
        db = random_model_database(model, 6, 8, seed=11)
        assert len(db) == 6
        assert all(g.num_vertices == 8 for g in db.graphs())

    def test_unknown_model(self):
        with pytest.raises(ValueError, match="unknown model"):
            random_model_database("zz", 3, 5)

    def test_deterministic(self):
        a = random_model_database("er", 4, 6, seed=9)
        b = random_model_database("er", 4, 6, seed=9)
        for gid in a.gids():
            assert sorted(a[gid].edges()) == sorted(b[gid].edges())

    @pytest.mark.parametrize("model", ["er", "ba", "ws"])
    def test_miners_agree_on_model_databases(self, model):
        """Miner agreement must not depend on the kernel generator."""
        db = random_model_database(model, 8, 7, num_labels=3, seed=13)
        gspan = GSpanMiner(max_size=3).mine(db, 3)
        gaston = GastonMiner(max_size=3).mine(db, 3)
        assert gspan.keys() == gaston.keys()

"""Tests for closed/maximal pattern post-processing."""

from repro.graph.canonical import canonical_code
from repro.graph.database import GraphDatabase
from repro.mining.closed import (
    closed_patterns,
    compression_ratio,
    maximal_patterns,
)
from repro.mining.gspan import GSpanMiner
from repro.mining.base import PatternSet
from repro.graph.isomorphism import subgraph_exists

from .conftest import path_graph, random_database, triangle


class TestOnKnownDatabase:
    def mine(self):
        db = GraphDatabase.from_graphs(
            [triangle(), triangle(), path_graph(3)]
        )
        return GSpanMiner().mine(db, 2)

    def test_closed_drops_absorbed_patterns(self):
        patterns = self.mine()
        closed = closed_patterns(patterns)
        # The single edge appears in 3 graphs; the 2-path in 3 too; the
        # triangle only in 2.  Edge (support 3) is NOT closed (2-path has
        # the same support); 2-path and triangle are closed.
        assert canonical_code(path_graph(3)) in closed.keys()
        assert canonical_code(triangle()) in closed.keys()
        edge_key = canonical_code(path_graph(2))
        assert edge_key not in closed.keys()

    def test_maximal_is_only_triangle(self):
        patterns = self.mine()
        maximal = maximal_patterns(patterns)
        assert maximal.keys() == {canonical_code(triangle())}

    def test_maximal_subset_of_closed(self):
        patterns = self.mine()
        assert maximal_patterns(patterns).keys() <= closed_patterns(
            patterns
        ).keys()


class TestSemantics:
    def test_closed_definition_holds(self, medium_db):
        patterns = GSpanMiner().mine(medium_db, 3)
        closed = closed_patterns(patterns)
        for p in closed:
            for q in patterns:
                if q.size <= p.size or q.support != p.support:
                    continue
                assert not subgraph_exists(p.graph, q.graph), (
                    "closed pattern has an equal-support supergraph"
                )

    def test_maximal_definition_holds(self, medium_db):
        patterns = GSpanMiner().mine(medium_db, 3)
        maximal = maximal_patterns(patterns)
        for p in maximal:
            for q in patterns:
                if q.size <= p.size:
                    continue
                assert not subgraph_exists(p.graph, q.graph)

    def test_every_pattern_has_closed_supergraph_with_same_support(
        self, medium_db
    ):
        """Closed sets are lossless: supports are recoverable."""
        patterns = GSpanMiner().mine(medium_db, 3)
        closed = closed_patterns(patterns)
        for p in patterns:
            witnesses = [
                q
                for q in closed
                if q.size >= p.size
                and q.support == p.support
                and subgraph_exists(p.graph, q.graph)
            ]
            assert witnesses, f"no closed witness for {p}"

    def test_compression_ratio(self, medium_db):
        patterns = GSpanMiner().mine(medium_db, 3)
        maximal = maximal_patterns(patterns)
        ratio = compression_ratio(patterns, maximal)
        assert 0.0 <= ratio < 1.0
        assert compression_ratio(PatternSet(), PatternSet()) == 0.0

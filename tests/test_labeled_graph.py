"""Unit tests for the LabeledGraph data structure."""

import pytest

from repro.graph.labeled_graph import LabeledGraph

from .conftest import make_graph, path_graph, triangle


class TestConstruction:
    def test_empty_graph(self):
        g = LabeledGraph()
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert list(g.edges()) == []

    def test_add_vertex_returns_sequential_ids(self):
        g = LabeledGraph()
        assert g.add_vertex("a") == 0
        assert g.add_vertex("b") == 1
        assert g.vertex_label(0) == "a"
        assert g.vertex_label(1) == "b"

    def test_from_vertices_and_edges(self):
        g = make_graph([0, 1, 2], [(0, 1, 9), (1, 2, 8)])
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert g.edge_label(0, 1) == 9
        assert g.edge_label(2, 1) == 8

    def test_single_edge_constructor(self):
        g = LabeledGraph.single_edge("x", "e", "y")
        assert g.num_vertices == 2
        assert g.num_edges == 1
        assert g.edge_label(0, 1) == "e"

    def test_size_is_edge_count(self):
        assert triangle().size == 3
        assert path_graph(5).size == 4


class TestEdgeValidation:
    def test_self_loop_rejected(self):
        g = LabeledGraph()
        g.add_vertex(0)
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(0, 0, 1)

    def test_duplicate_edge_rejected(self):
        g = make_graph([0, 0], [(0, 1, 0)])
        with pytest.raises(ValueError, match="duplicate"):
            g.add_edge(0, 1, 2)
        with pytest.raises(ValueError, match="duplicate"):
            g.add_edge(1, 0, 2)

    def test_unknown_vertex_rejected(self):
        g = make_graph([0, 0], [])
        with pytest.raises(ValueError, match="unknown vertex"):
            g.add_edge(0, 5, 1)

    def test_remove_missing_edge_raises(self):
        g = make_graph([0, 0], [])
        with pytest.raises(KeyError):
            g.remove_edge(0, 1)


class TestMutation:
    def test_remove_edge(self):
        g = triangle()
        g.remove_edge(0, 1)
        assert g.num_edges == 2
        assert not g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_set_vertex_label(self):
        g = path_graph(3)
        g.set_vertex_label(1, 42)
        assert g.vertex_label(1) == 42

    def test_set_edge_label_both_directions(self):
        g = path_graph(3)
        g.set_edge_label(1, 0, "new")
        assert g.edge_label(0, 1) == "new"
        assert g.edge_label(1, 0) == "new"

    def test_set_edge_label_missing_raises(self):
        g = path_graph(3)
        with pytest.raises(KeyError):
            g.set_edge_label(0, 2, "x")

    def test_version_bumps_on_mutation(self):
        g = path_graph(3)
        v0 = g.version
        g.set_vertex_label(0, 5)
        assert g.version > v0
        v1 = g.version
        g.add_vertex(1)
        assert g.version > v1

    def test_copy_is_independent(self):
        g = triangle()
        clone = g.copy()
        clone.remove_edge(0, 1)
        clone.set_vertex_label(0, 99)
        assert g.num_edges == 3
        assert g.vertex_label(0) == 0


class TestInspection:
    def test_edges_yields_each_once_u_lt_v(self):
        g = triangle()
        edges = list(g.edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)

    def test_neighbors(self):
        g = path_graph(3, elabel=7)
        assert dict(g.neighbors(1)) == {0: 7, 2: 7}
        assert g.degree(1) == 2
        assert g.degree(0) == 1

    def test_label_histogram(self):
        g = make_graph([0, 0, 1], [(0, 1, 5), (1, 2, 5)])
        vcounts, ecounts = g.label_histogram()
        assert vcounts == {0: 2, 1: 1}
        assert ecounts == {5: 2}

    def test_len_is_vertex_count(self):
        assert len(path_graph(4)) == 4

    def test_repr_mentions_counts(self):
        assert "vertices=3" in repr(triangle())
        assert "edges=3" in repr(triangle())


class TestStructure:
    def test_connected_components_single(self):
        assert len(triangle().connected_components()) == 1
        assert triangle().is_connected()

    def test_connected_components_multiple(self):
        g = make_graph([0, 0, 0, 0], [(0, 1, 0), (2, 3, 0)])
        components = g.connected_components()
        assert sorted(sorted(c) for c in components) == [[0, 1], [2, 3]]
        assert not g.is_connected()

    def test_isolated_vertex_is_own_component(self):
        g = make_graph([0, 0, 0], [(0, 1, 0)])
        assert len(g.connected_components()) == 2

    def test_empty_graph_is_connected(self):
        assert LabeledGraph().is_connected()

    def test_induced_subgraph(self):
        g = triangle(labels=(1, 2, 3))
        sub = g.induced_subgraph([0, 2])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert sub.vertex_label(0) == 1
        assert sub.vertex_label(1) == 3

    def test_induced_subgraph_renumbers_densely(self):
        g = path_graph(5)
        sub = g.induced_subgraph([4, 3])
        assert sub.num_vertices == 2
        assert sub.has_edge(0, 1)

    def test_edge_subgraph(self):
        g = triangle(labels=(7, 8, 9))
        sub = g.edge_subgraph([(0, 1), (1, 2)])
        assert sub.num_edges == 2
        assert sub.num_vertices == 3
        assert sorted(
            sub.vertex_label(v) for v in sub.vertices()
        ) == [7, 8, 9]

    def test_edge_subgraph_drops_untouched_vertices(self):
        g = path_graph(5)
        sub = g.edge_subgraph([(1, 2)])
        assert sub.num_vertices == 2

"""Tests for strict t/v/e validation and lenient parse policies."""

import pytest

from repro.graph import io as graph_io
from repro.graph.io import GraphParseError, ParseReport

GOOD = """\
t # 0
v 0 1
v 1 2
e 0 1 5
t # 1
v 0 1
"""

# Graph 1 carries a malformed edge record; graphs 0 and 2 are fine.
POISONED = """\
t # 0
v 0 1
t # 1
v 0 1
v 1 2
e 0 1
t # 2
v 0 3
"""


class TestStrictParsing:
    def test_clean_input_parses(self):
        db = graph_io.loads(GOOD)
        assert len(db) == 2
        assert db[0].num_edges == 1

    def test_blank_lines_and_comments_ignored(self):
        db = graph_io.loads("# header\n\nt # 0\n\nv 0 1\n# done\n")
        assert len(db) == 1

    @pytest.mark.parametrize(
        "text, match",
        [
            ("v 0 1\n", "before 't'"),
            ("e 0 1 2\n", "before 't'"),
            ("t\n", "no graph id"),
            ("t #\n", "graph id is not an integer"),
            ("t # x\n", "graph id is not an integer"),
            ("t # 0\nv 0\n", "'v' record needs 2 fields"),
            ("t # 0\nv 0 1 extra\n", "'v' record needs 2 fields"),
            ("t # 0\nv 1 7\n", "out of order"),
            ("t # 0\nv zero 7\n", "vertex id is not an integer"),
            ("t # 0\nv 0 1\ne 0 1\n", "'e' record needs 3 fields"),
            ("t # 0\nv 0 1\ne 0 x 5\n", "endpoint is not an integer"),
            ("t # 0\nq 1 2\n", "unknown directive"),
        ],
    )
    def test_malformed_records_raise(self, text, match):
        with pytest.raises(GraphParseError, match=match):
            graph_io.loads(text)

    def test_error_provenance(self, tmp_path):
        path = tmp_path / "db.tve"
        path.write_text("t # 0\nv 0 1\nbad line here\n")
        with pytest.raises(GraphParseError) as excinfo:
            graph_io.read_database(path)
        err = excinfo.value
        assert err.source == str(path)
        assert err.line == 3
        assert err.token == "bad"
        assert err.gid == 0
        assert str(path) in str(err) and ":3:" in str(err)

    def test_parse_error_is_value_error(self):
        # Legacy callers catching ValueError keep working.
        with pytest.raises(ValueError):
            graph_io.loads("t # nope\n")

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            graph_io.loads(GOOD, on_error="explode")


class TestLenientPolicies:
    def test_skip_drops_only_poisoned_graph(self):
        report = ParseReport()
        pairs = list(
            graph_io.iter_graphs(
                POISONED.splitlines(), on_error="skip", report=report
            )
        )
        assert [gid for gid, _ in pairs] == [0, 2]
        assert report.graphs_ok == 2
        assert report.graphs_skipped == 1
        assert report.errors == []  # skip counts, collect records
        assert not report.clean

    def test_collect_keeps_typed_errors(self):
        report = ParseReport()
        list(
            graph_io.iter_graphs(
                POISONED.splitlines(), on_error="collect", report=report
            )
        )
        assert len(report.errors) == 1
        assert isinstance(report.errors[0], GraphParseError)
        assert report.errors[0].line == 6

    def test_multiple_errors_in_one_graph_skip_once(self):
        text = "t # 0\nv 0 1\nbad\nworse\nt # 1\nv 0 1\n"
        report = ParseReport()
        pairs = list(
            graph_io.iter_graphs(
                text.splitlines(), on_error="skip", report=report
            )
        )
        assert [gid for gid, _ in pairs] == [1]
        assert report.graphs_skipped == 1

    def test_poisoned_tail_graph_not_yielded(self):
        text = "t # 0\nv 0 1\nt # 1\nv 0 1\nbad\n"
        pairs = list(
            graph_io.iter_graphs(text.splitlines(), on_error="skip")
        )
        assert [gid for gid, _ in pairs] == [0]

    def test_bad_t_line_poisons_following_records(self):
        text = "t # nope\nv 0 1\ne 0 0 1\nt # 5\nv 0 2\n"
        report = ParseReport()
        pairs = list(
            graph_io.iter_graphs(
                text.splitlines(), on_error="skip", report=report
            )
        )
        assert [gid for gid, _ in pairs] == [5]
        assert report.graphs_skipped == 1

    def test_read_database_skip_policy(self, tmp_path):
        path = tmp_path / "db.tve"
        path.write_text(POISONED)
        report = ParseReport()
        db = graph_io.read_database(path, on_error="skip", report=report)
        assert sorted(db.gids()) == [0, 2]
        assert report.graphs_skipped == 1

    def test_report_summary_wording(self):
        report = ParseReport(graphs_ok=3)
        assert "3 graphs parsed cleanly" in report.summary()
        report = ParseReport(graphs_ok=3, graphs_skipped=2)
        assert "2 skipped" in report.summary()
        assert "recorded" not in report.summary()


class TestRoundTrip:
    def test_write_then_strict_read(self, tmp_path):
        db = graph_io.loads(GOOD)
        path = tmp_path / "out.tve"
        graph_io.write_database(db, path)
        back = graph_io.read_database(path)
        assert len(back) == len(db)
        assert graph_io.dumps(back) == graph_io.dumps(db)

"""Tests for selective unit re-mining (exact incremental unit updates)."""

import random

import pytest

from repro.core.incremental import IncrementalPartMiner
from repro.mining.gaston import GastonMiner
from repro.mining.gspan import GSpanMiner
from repro.mining.incremental_unit import (
    SelectiveRemineStats,
    selective_unit_remine,
)
from repro.updates.generator import UpdateGenerator
from repro.updates.tracker import hot_vertex_assignment

from .conftest import random_database, random_graph


def mutate_some(db, gids, seed=0):
    """Relabel one vertex in each of the given graphs (in place)."""
    rng = random.Random(seed)
    for gid in gids:
        graph = db[gid]
        graph.set_vertex_label(rng.randrange(graph.num_vertices), 9)


class TestExactness:
    @pytest.mark.parametrize("threshold", [2, 3])
    def test_equals_full_remine(self, threshold):
        db = random_database(seed=900, num_graphs=12, n=7)
        old = GastonMiner().mine(db, threshold)
        changed = {0, 3, 7}
        mutate_some(db, changed, seed=1)
        got = selective_unit_remine(db, old, changed, threshold)
        want = GastonMiner().mine(db, threshold)
        assert got.keys() == want.keys()
        for p in got:
            assert p.tids == want.get(p.key).tids

    def test_structural_changes(self):
        db = random_database(seed=901, num_graphs=12, n=6)
        old = GastonMiner().mine(db, 3)
        rng = random.Random(5)
        changed = {1, 4}
        for gid in changed:
            db.replace(gid, random_graph(rng, 7, 2))
        got = selective_unit_remine(db, old, changed, 3)
        want = GastonMiner().mine(db, 3)
        assert got.keys() == want.keys()

    def test_no_changes_is_identity(self):
        db = random_database(seed=902, num_graphs=8, n=6)
        old = GastonMiner().mine(db, 2)
        got = selective_unit_remine(db, old, set(), 2)
        assert got.keys() == old.keys()
        for p in got:
            assert p.tids == old.get(p.key).tids

    def test_repeated_batches_stay_exact(self):
        db = random_database(seed=903, num_graphs=10, n=6)
        current = GastonMiner().mine(db, 2)
        for round_index in range(3):
            changed = {round_index, round_index + 3}
            mutate_some(db, changed, seed=round_index)
            current = selective_unit_remine(db, current, changed, 2)
            want = GastonMiner().mine(db, 2)
            assert current.keys() == want.keys()


class TestFallback:
    def test_falls_back_when_most_pieces_changed(self):
        db = random_database(seed=904, num_graphs=10, n=6)
        old = GastonMiner().mine(db, 2)
        changed = set(range(8))
        mutate_some(db, changed, seed=2)
        stats = SelectiveRemineStats()
        got = selective_unit_remine(
            db, old, changed, 2, fallback_fraction=0.5, stats=stats
        )
        assert stats.fell_back_to_full
        assert got.keys() == GastonMiner().mine(db, 2).keys()

    def test_stats_populated(self):
        db = random_database(seed=905, num_graphs=12, n=6)
        old = GastonMiner().mine(db, 3)
        changed = {0, 5}
        mutate_some(db, changed, seed=3)
        stats = SelectiveRemineStats()
        selective_unit_remine(db, old, changed, 3, stats=stats)
        assert stats.changed_pieces == 2
        assert stats.survivors_checked == len(old)
        assert not stats.fell_back_to_full


class TestIntegrationWithIncPartMiner:
    def test_selective_mode_equals_full_mode(self):
        db = random_database(seed=906, num_graphs=12, n=6)
        ufreq = hot_vertex_assignment(db, 0.25, seed=7)
        results = {}
        for mode in ("full", "selective"):
            inc = IncrementalPartMiner(
                k=2,
                unit_support="exact",
                recheck_known=True,
                unit_remine=mode,
            )
            inc.initial_mine(db, 3, ufreq=ufreq)
            gen = UpdateGenerator(3, 2, seed=8)
            updates = gen.generate(inc.database, inc.ufreq, 0.25, 1, "mixed")
            results[mode] = inc.apply_updates(updates)
        assert (
            results["full"].patterns.keys()
            == results["selective"].patterns.keys()
        )
        truth = None  # both must equal a direct re-mine of either copy
        for mode in ("full", "selective"):
            assert results[mode].patterns.keys() == results[
                "full"
            ].patterns.keys()

    def test_selective_matches_ground_truth(self):
        db = random_database(seed=907, num_graphs=12, n=6)
        ufreq = hot_vertex_assignment(db, 0.25, seed=9)
        inc = IncrementalPartMiner(
            k=2,
            unit_support="exact",
            recheck_known=True,
            unit_remine="selective",
        )
        inc.initial_mine(db, 3, ufreq=ufreq)
        gen = UpdateGenerator(3, 2, seed=10)
        for _ in range(2):
            updates = gen.generate(inc.database, inc.ufreq, 0.3, 1, "mixed")
            result = inc.apply_updates(updates)
            truth = GSpanMiner().mine(inc.database, 3)
            assert result.patterns.keys() == truth.keys()

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError, match="unit_remine"):
            IncrementalPartMiner(unit_remine="bogus")

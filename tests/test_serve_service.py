"""Tests for the HTTP pattern service (repro.serve.service).

The centerpiece is the hot-reload hammering test: threaded clients fire
mixed match/contains queries while the catalog advances underneath the
service, and every response must be exactly what a direct
:class:`QueryEngine` computes for the snapshot version the response
reports — snapshot isolation, no torn reads.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import query
from repro.mining.gspan import GSpanMiner
from repro.runtime import RunTelemetry
from repro.serve.catalog import PatternCatalog
from repro.serve.engine import QueryEngine
from repro.serve.service import (
    PatternService,
    _SingleFlight,
    _WorkerPool,
    decode_graph,
    encode_graph,
)

from .conftest import random_database, triangle


# ----------------------------------------------------------------------
# HTTP helpers
# ----------------------------------------------------------------------
def http_get(url, timeout=10):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def http_post(url, payload, timeout=10):
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def published_catalog(tmp_path, seed=7100, min_support=4):
    db = random_database(seed=seed, num_graphs=8, n=6)
    patterns = GSpanMiner().mine(db, min_support)
    catalog = PatternCatalog(tmp_path / "catalog")
    catalog.publish(patterns, database=db)
    return catalog, db, patterns


class TestWireFormat:
    def test_graph_roundtrip(self):
        graph = triangle(labels=(1, 2, 3), edge_label=7)
        back = decode_graph(encode_graph(graph))
        assert back.vertex_labels() == graph.vertex_labels()
        assert sorted(back.edges()) == sorted(graph.edges())

    def test_bad_payloads_rejected(self):
        with pytest.raises(ValueError, match="object"):
            decode_graph([1, 2, 3])
        with pytest.raises(ValueError, match="edges"):
            decode_graph({"vertices": [0]})


class TestWorkerPool:
    def test_sheds_load_when_queue_full(self):
        pool = _WorkerPool(size=1, queue_size=1)
        release = threading.Event()
        running = threading.Event()

        def blocker():
            running.set()
            release.wait(timeout=10)
            return "done"

        first = pool.submit(blocker)
        assert running.wait(timeout=5)  # worker busy with `first`
        second = pool.submit(lambda: "queued")  # fills the queue
        assert second is not None
        assert pool.submit(lambda: "rejected") is None
        release.set()
        assert first.event.wait(timeout=5)
        assert first.result == "done"
        pool.close()

    def test_errors_propagate_to_job(self):
        pool = _WorkerPool(size=1, queue_size=4)

        def boom():
            raise RuntimeError("kaput")

        job = pool.submit(boom)
        assert job.event.wait(timeout=5)
        assert isinstance(job.error, RuntimeError)
        pool.close()


class TestSingleFlight:
    def test_concurrent_identical_calls_batched(self):
        flights = _SingleFlight()
        release = threading.Event()
        leader_running = threading.Event()
        calls = []
        results = []

        def compute():
            calls.append(1)
            leader_running.set()
            release.wait(timeout=10)
            return "answer"

        def run():
            results.append(flights.execute("key", compute))

        threads = [threading.Thread(target=run) for _ in range(4)]
        threads[0].start()
        assert leader_running.wait(timeout=5)
        for thread in threads[1:]:
            thread.start()
        deadline = time.time() + 5
        while flights.batched < 3 and time.time() < deadline:
            time.sleep(0.005)
        assert flights.batched == 3
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert calls == [1]  # the computation ran exactly once
        assert results == ["answer"] * 4

    def test_distinct_keys_not_batched(self):
        flights = _SingleFlight()
        assert flights.execute("a", lambda: 1) == 1
        assert flights.execute("b", lambda: 2) == 2
        assert flights.batched == 0

    def test_leader_error_shared_with_followers(self):
        flights = _SingleFlight()
        release = threading.Event()
        leader_running = threading.Event()
        errors = []

        def compute():
            leader_running.set()
            release.wait(timeout=10)
            raise RuntimeError("kaput")

        def run():
            try:
                flights.execute("key", compute)
            except RuntimeError as exc:
                errors.append(str(exc))

        threads = [threading.Thread(target=run) for _ in range(2)]
        threads[0].start()
        assert leader_running.wait(timeout=5)
        threads[1].start()
        deadline = time.time() + 5
        while flights.batched < 1 and time.time() < deadline:
            time.sleep(0.005)
        release.set()
        for thread in threads:
            thread.join(timeout=5)
        assert errors == ["kaput", "kaput"]

    def test_sequential_calls_recompute(self):
        flights = _SingleFlight()
        values = iter([10, 20])
        assert flights.execute("key", lambda: next(values)) == 10
        assert flights.execute("key", lambda: next(values)) == 20
        assert flights.batched == 0


class TestEndpoints:
    def test_healthz_stats_patterns(self, tmp_path):
        catalog, db, patterns = published_catalog(tmp_path)
        with PatternService(catalog, db) as service:
            status, body = http_get(service.base_url + "/healthz")
            assert status == 200
            assert body["status"] == "ok"
            assert body["ready"] is True
            assert body["version"] == 1
            assert body["patterns"] == len(patterns)
            assert body["circuits"]["catalog"]["state"] == "closed"
            assert body["circuits"]["query"]["state"] == "closed"
            assert body["memory"]["level"] == "ok"

            status, body = http_get(service.base_url + "/stats")
            assert status == 200
            assert body["engine"]["snapshot_version"] == 1
            assert body["service"]["requests"] >= 1

            status, body = http_get(
                service.base_url + "/patterns?top=3&by=support"
            )
            assert status == 200
            assert body["total"] == len(patterns)
            assert len(body["patterns"]) == 3
            supports = [p["support"] for p in body["patterns"]]
            assert supports == sorted(supports, reverse=True)

    def test_match_and_contains_equal_direct_engine(self, tmp_path):
        catalog, db, patterns = published_catalog(tmp_path)
        direct = QueryEngine(catalog.load(), db)
        with PatternService(catalog, db) as service:
            for induced in (False, True):
                for pattern in list(patterns)[:4]:
                    status, body = http_post(
                        service.base_url + "/query/match",
                        {
                            "pattern": encode_graph(pattern.graph),
                            "induced": induced,
                        },
                    )
                    assert status == 200
                    want = direct.match(pattern.graph, induced=induced)
                    assert body["gids"] == sorted(want.gids)
                    assert body["support"] == want.support
                    assert body["version"] == 1
                for gid, graph in list(db)[:4]:
                    status, body = http_post(
                        service.base_url + "/query/contains",
                        {
                            "graph": encode_graph(graph),
                            "induced": induced,
                        },
                    )
                    assert status == 200
                    want = direct.contains(graph, induced=induced)
                    assert body["pids"] == list(want.pids)

    def test_error_statuses(self, tmp_path):
        catalog, db, _ = published_catalog(tmp_path)
        with PatternService(catalog, db) as service:
            status, body = http_get(service.base_url + "/nowhere")
            assert status == 404
            status, body = http_post(
                service.base_url + "/query/match", {"pattern": [1]}
            )
            assert status == 400
            assert "object" in body["error"]
            status, body = http_post(
                service.base_url + "/query/match", {"pattern": {"vertices": []}}
            )
            assert status == 400
            status, _ = http_post(service.base_url + "/query/nope", {})
            assert status == 404
            assert service.stats()["errors"] >= 3

    def test_graceful_shutdown(self, tmp_path):
        catalog, db, _ = published_catalog(tmp_path)
        service = PatternService(catalog, db).start()
        url = service.base_url + "/healthz"
        assert http_get(url)[0] == 200
        service.close()
        with pytest.raises((ConnectionError, urllib.error.URLError)):
            urllib.request.urlopen(url, timeout=2)

    def test_telemetry_digest(self, tmp_path):
        catalog, db, patterns = published_catalog(tmp_path)
        with PatternService(catalog, db) as service:
            pattern = next(iter(patterns)).graph
            http_post(
                service.base_url + "/query/match",
                {"pattern": encode_graph(pattern)},
            )
            telemetry = RunTelemetry()
            service.attach_telemetry(telemetry)
        assert telemetry.serving["engine"]["queries"] == 1
        assert telemetry.serving["service"]["requests"] == 1
        back = RunTelemetry.from_dict(telemetry.to_dict())
        assert back.serving == telemetry.serving


class TestHotReload:
    def test_reload_noop_without_new_snapshot(self, tmp_path):
        catalog, db, _ = published_catalog(tmp_path)
        with PatternService(catalog, db) as service:
            status, body = http_post(service.base_url + "/reload", {})
            assert status == 200
            assert body == {"reloaded": False, "version": 1}

    def test_reload_swaps_snapshot(self, tmp_path):
        catalog, db, _ = published_catalog(tmp_path, min_support=4)
        bigger = GSpanMiner().mine(db, 3)
        with PatternService(catalog, db) as service:
            catalog.publish(bigger, database=db)
            status, body = http_post(service.base_url + "/reload", {})
            assert status == 200
            assert body == {"reloaded": True, "version": 2}
            assert service.engine.snapshot.version == 2
            assert service.stats()["reloads"] == 1

    def test_background_reload_thread(self, tmp_path):
        catalog, db, patterns = published_catalog(tmp_path)
        with PatternService(
            catalog, db, reload_interval=0.05
        ) as service:
            catalog.publish(patterns, database=db)
            deadline = time.time() + 5
            while (
                service.engine.snapshot.version < 2
                and time.time() < deadline
            ):
                time.sleep(0.02)
            assert service.engine.snapshot.version == 2

    def test_no_torn_reads_under_concurrent_reload(self, tmp_path):
        """Clients hammer match/contains while snapshots advance.

        Every response must be exactly the answer a direct QueryEngine
        gives for the snapshot version the response reports.
        """
        db = random_database(seed=7500, num_graphs=6, n=6)
        v1_patterns = GSpanMiner().mine(db, 5)
        v2_patterns = GSpanMiner().mine(db, 3)
        assert v1_patterns.keys() != v2_patterns.keys()
        catalog = PatternCatalog(tmp_path / "catalog")
        catalog.publish(v1_patterns, database=db)

        query_patterns = [p.graph for p in list(v2_patterns)[:3]]
        query_graphs = [(gid, graph) for gid, graph in list(db)[:3]]
        # Ground truth per snapshot version, computed on direct engines.
        engines = {1: QueryEngine(catalog.load(), db)}
        expected_match = {
            i: sorted(
                query.match(pattern, db).supporting_gids
            )
            for i, pattern in enumerate(query_patterns)
        }

        responses = []
        failures = []
        stop = threading.Event()

        def hammer(service_url):
            while not stop.is_set():
                for i, pattern in enumerate(query_patterns):
                    status, body = http_post(
                        service_url + "/query/match",
                        {"pattern": encode_graph(pattern)},
                    )
                    if status != 200:
                        failures.append(("match", status, body))
                    else:
                        responses.append(("match", i, body))
                for gid, graph in query_graphs:
                    status, body = http_post(
                        service_url + "/query/contains",
                        {"graph": encode_graph(graph)},
                    )
                    if status != 200:
                        failures.append(("contains", status, body))
                    else:
                        responses.append(("contains", gid, body))

        with PatternService(catalog, db, workers=4) as service:
            threads = [
                threading.Thread(target=hammer, args=(service.base_url,))
                for _ in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.2)
            catalog.publish(v2_patterns, database=db)
            engines[2] = QueryEngine(catalog.load(), db)
            http_post(service.base_url + "/reload", {})
            time.sleep(0.3)
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            batched = service.stats()["batched"]

        assert not failures
        assert responses
        versions_seen = set()
        for kind, ref, body in responses:
            version = body["version"]
            versions_seen.add(version)
            assert version in engines
            if kind == "match":
                # Match answers depend only on the database, which never
                # changed: identical across snapshot versions.
                assert body["gids"] == expected_match[ref]
            else:
                want = engines[version].contains(db[ref])
                assert body["pids"] == list(want.pids)
        assert 2 in versions_seen  # the reload really happened mid-hammer
        assert batched >= 0  # counter is present and non-negative

"""Service health: /healthz|/readyz flips, breakers, deadlines, memory."""

import pytest

from repro.resilience.errors import CircuitOpen
from repro.resilience.faults import FaultPlan
from repro.serve.service import PatternService, ServiceError, encode_graph

from .conftest import path_graph
from .test_serve_service import http_get, http_post, published_catalog


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def make_service(tmp_path, **kwargs):
    catalog, db, patterns = published_catalog(tmp_path)
    service = PatternService(catalog, db, **kwargs)
    return service, patterns


class TestHealthFlip:
    def test_healthz_flips_under_open_circuit_and_recovers(self, tmp_path):
        """The acceptance drill: open circuit => unready; successful
        half-open probe => ok again."""
        clock = FakeClock()
        service, _ = make_service(
            tmp_path, breaker_failures=2, breaker_reset=5.0,
            breaker_clock=clock,
        )
        with service:
            status, body = http_get(service.base_url + "/healthz")
            assert (status, body["status"]) == (200, "ok")

            # Two failing reloads trip the catalog breaker.
            plan = FaultPlan().inject(
                "serve.reload", OSError("manifest unreadable"), times=2
            )
            with plan.active():
                for _ in range(2):
                    status, body = http_post(
                        service.base_url + "/reload", {}
                    )
                    assert status == 500
            assert service.breakers["catalog"].state == "open"

            status, body = http_get(service.base_url + "/healthz")
            assert status == 503
            assert body["status"] == "unready"
            assert body["ready"] is False
            assert body["circuits"]["catalog"]["state"] == "open"

            # While open, /reload fails fast with 503 (no catalog I/O).
            status, body = http_post(service.base_url + "/reload", {})
            assert status == 503
            assert "circuit" in body["error"]

            # After the reset timeout a half-open probe is admitted; the
            # fault is spent, so it succeeds and closes the breaker.
            clock.advance(5.0)
            status, body = http_post(service.base_url + "/reload", {})
            assert status == 200
            assert service.breakers["catalog"].state == "closed"

            status, body = http_get(service.base_url + "/healthz")
            assert (status, body["status"]) == (200, "ok")

    def test_readyz_mirrors_healthz(self, tmp_path):
        service, _ = make_service(tmp_path)
        with service:
            for route in ("/healthz", "/readyz"):
                status, body = http_get(service.base_url + route)
                assert status == 200
                assert body["ready"] is True
                assert set(body) >= {"circuits", "memory", "version"}


class TestQueryBreaker:
    def test_open_query_circuit_rejects_with_503(self, tmp_path):
        service, _ = make_service(tmp_path, breaker_failures=1)
        with service:
            service.breakers["query"].record_failure()
            assert service.breakers["query"].state == "open"
            status, body = http_post(
                service.base_url + "/query/match",
                {"pattern": encode_graph(path_graph(2))},
            )
            assert status == 503
            assert "circuit" in body["error"]
            assert service.stats()["circuit_rejections"] == 1
            status, body = http_get(service.base_url + "/healthz")
            assert status == 503 and body["status"] == "unready"

    def test_engine_failures_trip_then_recover(self, tmp_path):
        clock = FakeClock()
        service, _ = make_service(
            tmp_path, breaker_failures=2, breaker_reset=1.0,
            breaker_clock=clock,
        )
        boom = {"on": True}
        real_match = service._engine.match

        def flaky_match(pattern, induced=False, deadline=None):
            if boom["on"]:
                raise RuntimeError("engine exploded")
            return real_match(pattern, induced=induced, deadline=deadline)

        service._engine.match = flaky_match
        payload = {"pattern": encode_graph(path_graph(2))}
        for _ in range(2):
            with pytest.raises(RuntimeError):
                service.execute("match", payload)
        assert service.breakers["query"].state == "open"
        with pytest.raises(ServiceError) as excinfo:
            service.execute("match", payload)
        assert excinfo.value.status == 503

        boom["on"] = False
        clock.advance(1.0)
        answer = service.execute("match", payload)
        assert answer["version"] == 1
        assert service.breakers["query"].state == "closed"


class TestDeadlines:
    def test_expired_deadline_maps_to_504(self, tmp_path):
        service, _ = make_service(tmp_path)
        with service:
            status, body = http_post(
                service.base_url + "/query/match",
                {
                    "pattern": encode_graph(path_graph(2)),
                    "deadline_ms": 0.0001,
                },
            )
            assert status == 504
            assert "deadline" in body["error"]
            assert service.stats()["deadline_exceeded"] == 1
            # The engine is healthy: a deadline miss is the caller's
            # budget, not a dependency failure.
            assert service.breakers["query"].state == "closed"

    def test_generous_deadline_answers_normally(self, tmp_path):
        service, _ = make_service(tmp_path)
        with service:
            status, body = http_post(
                service.base_url + "/query/match",
                {
                    "pattern": encode_graph(path_graph(2)),
                    "deadline_ms": 60_000,
                },
            )
            assert status == 200
            assert body["support"] >= 0

    def test_default_deadline_applies(self, tmp_path):
        service, _ = make_service(tmp_path, default_deadline=1e-9)
        with pytest.raises(Exception) as excinfo:
            service.execute(
                "match", {"pattern": encode_graph(path_graph(2))}
            )
        assert "deadline" in str(excinfo.value).lower()

    def test_bad_deadline_rejected(self, tmp_path):
        service, _ = make_service(tmp_path)
        for bad in ("soon", -5, 0):
            with pytest.raises(ServiceError) as excinfo:
                service.execute(
                    "match",
                    {
                        "pattern": encode_graph(path_graph(2)),
                        "deadline_ms": bad,
                    },
                )
            assert excinfo.value.status == 400


class TestMemoryWatermark:
    def test_soft_watermark_drops_caches_not_requests(self, tmp_path):
        usage = {"rss": 0}
        service, _ = make_service(
            tmp_path,
            memory_soft_bytes=100,
            memory_hard_bytes=200,
            memory_usage_fn=lambda: usage["rss"],
        )
        payload = {"pattern": encode_graph(path_graph(2))}
        baseline = service.execute("match", payload)
        assert service.engine._lru  # the answer was cached

        usage["rss"] = 150
        answer = service.execute("match", payload)
        assert answer == baseline  # degraded, still exact
        assert service.stats()["cache_drops"] >= 1

    def test_hard_watermark_sheds_with_503(self, tmp_path):
        usage = {"rss": 500}
        service, _ = make_service(
            tmp_path,
            memory_soft_bytes=100,
            memory_hard_bytes=200,
            memory_usage_fn=lambda: usage["rss"],
        )
        with service:
            status, body = http_post(
                service.base_url + "/query/match",
                {"pattern": encode_graph(path_graph(2))},
            )
            assert status == 503
            assert "memory" in body["error"]
            assert service.stats()["shed_memory"] == 1
            status, body = http_get(service.base_url + "/healthz")
            assert status == 503
            assert body["memory"]["level"] == "hard"

            # Pressure subsides: service recovers on its own.
            usage["rss"] = 0
            status, body = http_post(
                service.base_url + "/query/match",
                {"pattern": encode_graph(path_graph(2))},
            )
            assert status == 200
            status, body = http_get(service.base_url + "/healthz")
            assert status == 200

    def test_clear_caches_reports_sizes(self, tmp_path):
        service, _ = make_service(tmp_path)
        service.execute("match", {"pattern": encode_graph(path_graph(2))})
        dropped = service.engine.clear_caches()
        assert dropped["lru_entries"] >= 1
        assert not service.engine._lru


class TestCircuitOpenMapping:
    def test_circuit_open_maps_to_503_over_http(self, tmp_path):
        service, _ = make_service(tmp_path, breaker_failures=1)
        with service:
            service.breakers["catalog"].record_failure()
            status, body = http_post(service.base_url + "/reload", {})
            assert status == 503
            assert "circuit" in body["error"]

    def test_reload_failure_counts_on_breaker(self, tmp_path):
        service, _ = make_service(tmp_path, breaker_failures=3)
        plan = FaultPlan().inject("serve.reload", OSError("io"), times=1)
        with plan.active():
            with pytest.raises(OSError):
                service.reload()
        assert service.breakers["catalog"].stats["failures"] == 1
        # A clean reload closes the streak again.
        assert service.reload() is False
        assert service.breakers["catalog"].snapshot()[
            "consecutive_failures"
        ] == 0

"""MNI support semantics: differential tests against a brute-force oracle.

The oracle enumerates every embedding of a pattern in the *whole* graph
with the reference matcher and takes the minimum distinct-image count —
the textbook MNI definition, with no decomposition involved.  The
neighborhood-folded counter must agree exactly for patterns of radius
≤ r (the soundness guarantee) and never exceed it otherwise, under
every cell of the acceleration matrix (off / plans / flat / flat+batch).
"""

from __future__ import annotations

import io
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import perf
from repro.biggraph import (
    BigGraphMiner,
    MNISupport,
    NeighborhoodExtractor,
    pattern_radius,
)
from repro.graph.canonical import min_dfs_code
from repro.graph.isomorphism import find_embeddings
from repro.graph.labeled_graph import LabeledGraph
from repro.mining.gspan import GSpanMiner
from repro.mining.store import dump_patterns

from .conftest import make_graph, path_graph, random_graph, star_graph


def oracle_mni(pattern: LabeledGraph, graph: LabeledGraph) -> int:
    """Brute-force minimum-image support over the whole graph."""
    if pattern.num_vertices == 0:
        return 0
    images = [set() for _ in range(pattern.num_vertices)]
    for mapping in find_embeddings(pattern, graph):
        for pv, tv in mapping.items():
            images[pv].add(tv)
    return min(len(s) for s in images)


def accel_matrix():
    """The four acceleration states as (name, contextmanager factory)."""
    from contextlib import nullcontext

    return [
        ("off", perf.disabled),
        ("plans", perf.flat_disabled),
        ("flat", perf.batch_disabled),
        ("flat+batch", nullcontext),
    ]


def candidate_patterns(graph: LabeledGraph, max_size: int = 3):
    """Every pattern occurring in ``graph``, mined transactionally."""
    from repro.graph.database import GraphDatabase

    db = GraphDatabase.from_graphs([graph])
    return [p.graph for p in GSpanMiner(max_size=max_size).mine(db, 1)]


@st.composite
def connected_graphs(draw, max_vertices=8, vlabels=3, elabels=2):
    n = draw(st.integers(min_value=2, max_value=max_vertices))
    graph = LabeledGraph()
    for _ in range(n):
        graph.add_vertex(draw(st.integers(0, vlabels - 1)))
    for v in range(1, n):
        parent = draw(st.integers(0, v - 1))
        graph.add_edge(v, parent, draw(st.integers(0, elabels - 1)))
    for _ in range(draw(st.integers(0, 3))):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, draw(st.integers(0, elabels - 1)))
    return graph


class TestPatternRadius:
    def test_known_shapes(self):
        assert pattern_radius(path_graph(2)) == 1
        assert pattern_radius(path_graph(3)) == 1  # center vertex
        assert pattern_radius(path_graph(4)) == 2
        assert pattern_radius(star_graph(5)) == 1
        assert pattern_radius(make_graph([0], [])) == 0

    def test_disconnected_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            pattern_radius(make_graph([0, 0], []))


class TestMNIDifferential:
    @settings(max_examples=25, deadline=None)
    @given(connected_graphs(), st.integers(1, 2))
    def test_matches_oracle_across_accel_matrix(self, graph, radius):
        db = NeighborhoodExtractor(radius=radius).extract(graph)
        for pattern in candidate_patterns(graph):
            canon = min_dfs_code(pattern).to_graph()
            expected = oracle_mni(canon, graph)
            rho = pattern_radius(canon)
            counts = {}
            for name, mode in accel_matrix():
                with mode():
                    counter = MNISupport(graph, db, radius)
                    counts[name] = counter.count(pattern)
            baseline = counts["off"]
            for name, count in counts.items():
                assert count.support == baseline.support, name
                assert count.min_image == baseline.min_image, name
                assert count.vertex == baseline.vertex, name
            if rho <= radius:
                assert baseline.support == expected
            else:
                assert baseline.support <= expected

    @settings(max_examples=10, deadline=None)
    @given(connected_graphs(max_vertices=7), st.integers(2, 3))
    def test_candidate_seed_equals_full_scan(self, graph, radius):
        # Seeding the locate phase with a TID superset must not change
        # the count — the optimization the miner's verify pass uses.
        db = NeighborhoodExtractor(radius=radius).extract(graph)
        counter = MNISupport(graph, db, radius)
        for pattern in candidate_patterns(graph, max_size=2):
            full = counter.count(pattern)
            seeded = counter.count(
                pattern, candidate_gids=set(db.gids())
            )
            assert seeded == full

    def test_zero_support_pattern(self):
        graph = path_graph(4, vlabel=0)
        db = NeighborhoodExtractor(radius=1).extract(graph)
        counter = MNISupport(graph, db, 1)
        absent = make_graph([7, 7], [(0, 1, 9)])
        count = counter.count(absent)
        assert count.support == 0
        assert count.min_image == frozenset()


class TestAccelMatrixByteIdentity:
    @pytest.mark.parametrize("seed", [2, 11])
    def test_full_runs_dump_identically(self, seed):
        rng = random.Random(seed)
        graph = random_graph(
            rng, 40, extra_edges=25, num_vertex_labels=3
        )
        dumps = {}
        for name, mode in accel_matrix():
            with mode():
                result = BigGraphMiner(radius=1, max_size=3).mine(
                    graph, 3
                )
                buffer = io.StringIO()
                dump_patterns(result.patterns, buffer)
                dumps[name] = buffer.getvalue()
        baseline = dumps["off"]
        assert len(baseline.splitlines()) > 1  # found something
        for name, text in dumps.items():
            assert text == baseline, name

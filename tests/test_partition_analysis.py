"""Tests for partition quality metrics."""

import math

from repro.partition.analysis import (
    BipartitionQuality,
    bipartition_quality,
    compare_partitioners,
    tree_quality,
)
from repro.partition.dbpartition import db_partition
from repro.partition.graphpart import GraphPartitioner, build_bipartition
from repro.partition.metis import MetisPartitioner
from repro.partition.weights import PARTITION1, PARTITION2

from .conftest import make_graph, path_graph, random_database


class TestBipartitionQuality:
    def test_cut_ratio(self):
        g = path_graph(4)
        bipart = build_bipartition(g, {0, 1}, [0.0] * 4)
        quality = bipartition_quality(g, bipart)
        assert quality.cut_edges == 1
        assert quality.total_edges == 3
        assert quality.cut_ratio == 1 / 3

    def test_balance_perfect_split(self):
        g = path_graph(4)
        bipart = build_bipartition(g, {0, 1}, [0.0] * 4)
        assert bipartition_quality(g, bipart).balance == 1.0

    def test_balance_lopsided(self):
        g = path_graph(4)
        bipart = build_bipartition(g, {0}, [0.0] * 4)
        assert bipartition_quality(g, bipart).balance == 1 / 3

    def test_isolation_with_hot_side(self):
        g = path_graph(4)
        ufreq = [1.0, 1.0, 0.0, 0.0]
        bipart = build_bipartition(g, {0, 1}, ufreq)
        quality = bipartition_quality(g, bipart, ufreq)
        assert quality.isolation == 1.0  # all hot mass in one core

    def test_isolation_split_mass(self):
        g = path_graph(4)
        ufreq = [1.0, 0.0, 1.0, 0.0]
        bipart = build_bipartition(g, {0, 1}, ufreq)
        quality = bipartition_quality(g, bipart, ufreq)
        assert quality.isolation == 0.5

    def test_no_ufreq_defaults_to_one(self):
        g = path_graph(3)
        bipart = build_bipartition(g, {0}, [0.0] * 3)
        assert bipartition_quality(g, bipart).isolation == 1.0

    def test_empty_graph_cut_ratio(self):
        quality = BipartitionQuality(
            cut_edges=0, total_edges=0, balance=1.0, isolation=1.0
        )
        assert quality.cut_ratio == 0.0


class TestTreeQuality:
    def test_metrics_in_range(self):
        db = random_database(seed=950, num_graphs=6)
        tree = db_partition(db, 4)
        quality = tree_quality(tree)
        assert 0.0 <= quality.average_cut_ratio <= 1.0
        assert 0.0 < quality.average_balance <= 1.0
        assert quality.total_connective_edges == tree.total_connective_edges()
        assert len(quality.unit_edge_counts) == 4
        assert quality.unit_skew >= 1.0 or math.isinf(quality.unit_skew)

    def test_leaf_only_tree(self):
        db = random_database(seed=951, num_graphs=3)
        tree = db_partition(db, 1)
        quality = tree_quality(tree)
        assert quality.average_cut_ratio == 0.0
        assert quality.total_connective_edges == 0


class TestComparePartitioners:
    def test_partition1_isolates_better_partition2_cuts_better(self):
        # A barbell graph with all the hot vertices in one lobe makes the
        # two criteria pull apart: Partition2 cuts the bridge, Partition1
        # gathers the hot vertices wherever they are.
        g = make_graph(
            [0] * 6,
            [
                (0, 1, 0), (1, 2, 0), (2, 0, 0),
                (2, 3, 0),
                (3, 4, 0), (4, 5, 0), (5, 3, 0),
            ],
        )
        ufreq = [1.0, 0.0, 1.0, 1.0, 0.0, 0.0]  # hot straddles the bridge
        results = compare_partitioners(
            [g],
            {
                "P1": GraphPartitioner(PARTITION1),
                "P2": GraphPartitioner(PARTITION2),
            },
            [ufreq],
        )
        assert results["P2"].cut_edges <= results["P1"].cut_edges
        assert results["P1"].isolation >= results["P2"].isolation - 1e-9

    def test_metis_in_comparison(self):
        db = random_database(seed=952, num_graphs=5, n=10, extra_edges=4)
        graphs = list(db.graphs())
        results = compare_partitioners(
            graphs,
            {
                "metis": MetisPartitioner(),
                "graphpart": GraphPartitioner(PARTITION2),
            },
        )
        assert set(results) == {"metis", "graphpart"}
        for quality in results.values():
            assert quality.total_edges == sum(g.num_edges for g in graphs)

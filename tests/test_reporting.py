"""Tests for benchmark reporting utilities."""

import math

import pytest

from repro.bench.harness import Experiment, Series
from repro.bench.reporting import (
    crossover_points,
    find_series,
    load_results,
    markdown_table,
    render_report,
    speedup,
)


def build_experiment():
    exp = Experiment("figx", "demo", "minsup", "runtime (s)")
    a = exp.new_series("PartMiner")
    a.add(1, 2.0)
    a.add(2, 1.0)
    a.add(3, 1.0)
    b = exp.new_series("ADIMINE")
    b.add(1, 1.0)
    b.add(2, 2.0)
    b.add(3, 4.0)
    return exp


class TestMarkdownTable:
    def test_contains_all_cells(self):
        table = markdown_table(build_experiment())
        assert "| minsup | PartMiner | ADIMINE |" in table
        assert "| 1 | 2.000 | 1.000 |" in table

    def test_missing_values_rendered(self):
        exp = Experiment("e", "t", "x", "y")
        exp.new_series("a").add(1, 1.0)
        exp.new_series("b").add(2, 2.0)
        assert "—" in markdown_table(exp)


class TestSpeedup:
    def test_geometric_mean(self):
        exp = build_experiment()
        ratio = speedup(exp.series[0], exp.series[1])
        # ratios: 0.5, 2, 4 -> geometric mean = cbrt(4) ≈ 1.587
        assert ratio == pytest.approx(4 ** (1 / 3))

    def test_no_shared_points(self):
        a = Series("a", [(1, 1.0)])
        b = Series("b", [(2, 1.0)])
        assert math.isnan(speedup(a, b))


class TestCrossover:
    def test_single_flip(self):
        exp = build_experiment()
        flips = crossover_points(exp.series[0], exp.series[1])
        assert flips == [2]

    def test_no_flip(self):
        a = Series("a", [(1, 1.0), (2, 1.0)])
        b = Series("b", [(1, 2.0), (2, 3.0)])
        assert crossover_points(a, b) == []


class TestFindSeries:
    def test_case_insensitive_fragment(self):
        exp = build_experiment()
        assert find_series(exp, "adimine").name == "ADIMINE"
        assert find_series(exp, "Part").name == "PartMiner"

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            find_series(build_experiment(), "gaston")


class TestLoadAndRender:
    def test_roundtrip_directory(self, tmp_path):
        exp = build_experiment()
        exp.save(tmp_path)
        results = load_results(tmp_path)
        assert set(results) == {"figx"}
        report = render_report(
            results, expectations={"figx": "Expected: a crossover at 2."}
        )
        assert "### figx: demo" in report
        assert "Expected: a crossover at 2." in report
        assert "| minsup |" in report

"""Tests for minimum DFS codes (the gSpan canonical form)."""

import itertools
import random

import pytest

from repro.graph.canonical import (
    DFSCode,
    canonical_code,
    code_sort_key,
    edge_sort_key,
    is_min_code,
    min_dfs_code,
)
from repro.graph.isomorphism import are_isomorphic
from repro.graph.labeled_graph import LabeledGraph

from .conftest import (
    make_graph,
    path_graph,
    permuted_copy,
    random_graph,
    star_graph,
    triangle,
)


class TestPaperFigure1:
    """The paper's Fig 1 example: min code of the example graph."""

    def graph(self):
        return make_graph(
            [0, 0, 1, 2],
            [(0, 1, "a"), (1, 2, "a"), (1, 3, "c"), (3, 0, "b")],
        )

    def test_min_code_matches_paper(self):
        code = min_dfs_code(self.graph())
        assert code.edges == (
            (0, 1, 0, "a", 0),
            (1, 2, 0, "a", 1),
            (1, 3, 0, "c", 2),
            (3, 0, 2, "b", 0),
        )

    def test_fig1_alternative_codes_are_larger(self):
        # The T2/T3 codes from Fig 1(c)/(d) must compare greater.
        t1 = code_sort_key(min_dfs_code(self.graph()).edges)
        t2 = code_sort_key(
            [
                (0, 1, 0, "a", 0),
                (1, 2, 0, "b", 2),
                (2, 0, 2, "c", 0),
                (0, 3, 0, "a", 1),
            ]
        )
        assert t1 < t2


class TestInvariance:
    def test_permutation_invariance_exhaustive_small(self):
        g = triangle(labels=(0, 1, 2))
        base = canonical_code(g)
        for perm in itertools.permutations(range(3)):
            assert canonical_code(permuted_copy(g, list(perm))) == base

    def test_permutation_invariance_random(self):
        rng = random.Random(13)
        for _ in range(40):
            g = random_graph(rng, rng.randrange(2, 8), 2)
            perm = list(range(g.num_vertices))
            rng.shuffle(perm)
            assert canonical_code(permuted_copy(g, perm)) == canonical_code(g)

    def test_codes_equal_iff_isomorphic(self):
        rng = random.Random(14)
        for _ in range(60):
            g1 = random_graph(rng, rng.randrange(2, 7), 1, 2, 2)
            g2 = random_graph(rng, g1.num_vertices, 1, 2, 2)
            if g1.num_edges != g2.num_edges:
                continue
            assert (canonical_code(g1) == canonical_code(g2)) == (
                are_isomorphic(g1, g2)
            )


class TestDFSCode:
    def test_to_graph_roundtrip(self):
        rng = random.Random(15)
        for _ in range(20):
            g = random_graph(rng, rng.randrange(2, 7), 2)
            code = min_dfs_code(g)
            rebuilt = code.to_graph()
            assert are_isomorphic(g, rebuilt)
            assert min_dfs_code(rebuilt).sort_key() == code.sort_key()

    def test_num_vertices(self):
        code = min_dfs_code(path_graph(4))
        assert code.num_vertices() == 4
        assert len(code) == 3

    def test_rightmost_path_of_path(self):
        code = min_dfs_code(path_graph(4))
        assert code.rightmost_path() == [0, 1, 2, 3]

    def test_rightmost_path_of_star(self):
        code = min_dfs_code(star_graph(3, center_label=0, leaf_label=1))
        # Star: root is the center, each leaf a forward edge; rightmost
        # path is root -> last leaf.
        assert len(code.rightmost_path()) == 2

    def test_str_format(self):
        code = min_dfs_code(LabeledGraph.single_edge(1, 2, 3))
        assert str(code) == "(0,1,1,2,3)"


class TestEdgeOrder:
    def test_backward_before_forward(self):
        backward = (2, 0, 0, 0, 0)
        forward = (2, 3, 0, 0, 0)
        assert edge_sort_key(backward) < edge_sort_key(forward)

    def test_forward_deeper_source_first(self):
        from_deep = (2, 3, 0, 0, 0)
        from_shallow = (0, 3, 0, 0, 0)
        assert edge_sort_key(from_deep) < edge_sort_key(from_shallow)

    def test_backward_smaller_target_first(self):
        assert edge_sort_key((3, 0, 0, 0, 0)) < edge_sort_key((3, 1, 0, 0, 0))

    def test_labels_break_ties(self):
        assert edge_sort_key((1, 2, 0, "a", 0)) < edge_sort_key(
            (1, 2, 0, "b", 0)
        )


class TestIsMinCode:
    def test_min_code_is_min(self):
        g = triangle(labels=(0, 1, 2))
        assert is_min_code(min_dfs_code(g).edges)

    def test_non_min_code_detected(self):
        # Fig 1 T2's code is valid but not minimal.
        code = [
            (0, 1, 0, "a", 0),
            (1, 2, 0, "b", 2),
            (2, 0, 2, "c", 0),
            (0, 3, 0, "a", 1),
        ]
        assert not is_min_code(code)


class TestErrors:
    def test_empty_graph_rejected(self):
        with pytest.raises(ValueError, match="at least one edge"):
            min_dfs_code(LabeledGraph())

    def test_disconnected_rejected(self):
        g = make_graph([0, 0, 0, 0], [(0, 1, 0), (2, 3, 0)])
        with pytest.raises(ValueError, match="connected"):
            min_dfs_code(g)


class TestTrickyStructures:
    """Graphs that exercise backtracking in the min-code search."""

    def test_square(self):
        g = make_graph([0] * 4, [(0, 1, 0), (1, 2, 0), (2, 3, 0), (3, 0, 0)])
        code = min_dfs_code(g)
        assert code.edges == (
            (0, 1, 0, 0, 0),
            (1, 2, 0, 0, 0),
            (2, 3, 0, 0, 0),
            (3, 0, 0, 0, 0),
        )

    def test_two_triangles_sharing_vertex(self):
        g = make_graph(
            [0] * 5,
            [
                (0, 1, 0), (1, 2, 0), (2, 0, 0),
                (0, 3, 0), (3, 4, 0), (4, 0, 0),
            ],
        )
        code = min_dfs_code(g)
        assert len(code) == 6
        assert is_min_code(code.edges)

    def test_complete_graph_k4(self):
        g = make_graph(
            [0] * 4,
            [(u, v, 0) for u in range(4) for v in range(u + 1, 4)],
        )
        code = min_dfs_code(g)
        assert len(code) == 6
        # K4's min code: every new vertex closes all back edges first.
        assert code.edges[0] == (0, 1, 0, 0, 0)
        assert is_min_code(code.edges)

    def test_labeled_asymmetry(self):
        # Same topology, labels force a unique minimal root.
        g = make_graph([5, 1, 3], [(0, 1, 0), (1, 2, 0), (2, 0, 0)])
        code = min_dfs_code(g)
        assert code.edges[0][2] == 1  # smallest vertex label starts the code


class TestHighlySymmetricGraphs:
    """Symmetric graphs stress the embedding bookkeeping hardest."""

    def petersen(self):
        outer = [(i, (i + 1) % 5, 0) for i in range(5)]
        inner = [(5 + i, 5 + (i + 2) % 5, 0) for i in range(5)]
        spokes = [(i, 5 + i, 0) for i in range(5)]
        return make_graph([0] * 10, outer + inner + spokes)

    def test_petersen_canonical_is_stable(self):
        g = self.petersen()
        code = min_dfs_code(g)
        assert len(code) == 15
        assert is_min_code(code.edges)

    def test_petersen_permutation_invariance(self):
        g = self.petersen()
        base = canonical_code(g)
        perm = [3, 8, 1, 6, 0, 9, 2, 7, 5, 4]
        assert canonical_code(permuted_copy(g, perm)) == base

    def test_complete_bipartite_k23(self):
        g = make_graph(
            [0, 0, 1, 1, 1],
            [(u, v, 0) for u in (0, 1) for v in (2, 3, 4)],
        )
        code = min_dfs_code(g)
        assert len(code) == 6
        assert is_min_code(code.edges)

    def test_wheel_graph(self):
        spokes = [(0, i, 0) for i in range(1, 6)]
        rim = [(i, i % 5 + 1, 1) for i in range(1, 6)]
        g = make_graph([9] + [0] * 5, spokes + rim)
        base = canonical_code(g)
        perm = [0, 3, 4, 5, 1, 2]  # rotate the rim: automorphism
        assert canonical_code(permuted_copy(g, perm)) == base

    def test_long_cycle(self):
        n = 12
        g = make_graph([0] * n, [(i, (i + 1) % n, 0) for i in range(n)])
        code = min_dfs_code(g)
        # A uniform cycle's min code: a path of forward edges + one
        # closing backward edge.
        backward = [e for e in code.edges if e[0] > e[1]]
        assert len(backward) == 1
        assert backward[0][:2] == (n - 1, 0)


class TestAgainstWeisfeilerLehman:
    """Cross-check: equal canonical codes imply equal WL hashes, and
    differing WL hashes imply differing canonical codes."""

    def test_wl_hash_consistency(self):
        nx = pytest.importorskip("networkx")

        def to_nx(g):
            h = nx.Graph()
            for v in g.vertices():
                h.add_node(v, label=str(g.vertex_label(v)))
            for u, v, label in g.edges():
                h.add_edge(u, v, label=str(label))
            return h

        def wl(g):
            return nx.weisfeiler_lehman_graph_hash(
                to_nx(g), node_attr="label", edge_attr="label"
            )

        rng = random.Random(77)
        graphs = [random_graph(rng, rng.randrange(3, 8), 2) for _ in range(30)]
        for g1 in graphs:
            for g2 in graphs:
                if canonical_code(g1) == canonical_code(g2):
                    assert wl(g1) == wl(g2)
                elif wl(g1) != wl(g2):
                    assert canonical_code(g1) != canonical_code(g2)

"""Differential tests for the query engine (repro.serve.engine).

The engine's contract is byte-identical answers to the unindexed
:mod:`repro.query` path, for both monomorphism and induced semantics —
every test here pins a served answer against the linear-scan baseline.
"""

import pytest
from hypothesis import given, settings

from repro import query
from repro.graph.isomorphism import subgraph_exists
from repro.mining.base import Pattern, PatternSet
from repro.mining.gspan import GSpanMiner
from repro.serve.catalog import CatalogSnapshot, catalog_order
from repro.serve.engine import QueryEngine
from repro.serve.index import FragmentIndex

from .conftest import make_graph, random_database
from .test_properties import databases


def make_snapshot(patterns, db=None, version=1):
    ordered = catalog_order(patterns)
    index = FragmentIndex.build((p.graph for p in ordered), db)
    return CatalogSnapshot(version, patterns, index, {})


def mined_engine(seed=6100, num_graphs=8, min_support=3, db=None, **kwargs):
    mine_db = random_database(seed=seed, num_graphs=num_graphs)
    patterns = GSpanMiner().mine(mine_db, min_support)
    serve_db = db if db is not None else mine_db
    snapshot = make_snapshot(patterns, serve_db)
    return QueryEngine(snapshot, serve_db, **kwargs), patterns, serve_db


def assert_same_patterns(got, want):
    assert got.keys() == want.keys()
    for p in got:
        q = want.get(p.key)
        assert p.support == q.support
        assert p.tids == q.tids


class TestMatchDifferential:
    @pytest.mark.parametrize("induced", [False, True])
    def test_match_equals_query_match(self, induced):
        engine, patterns, db = mined_engine(seed=6201)
        for pattern in patterns:
            answer = engine.match(pattern.graph, induced=induced)
            baseline = query.match(pattern.graph, db, induced=induced)
            assert answer.gids == baseline.supporting_gids
            assert answer.support == baseline.support

    @pytest.mark.parametrize("induced", [False, True])
    def test_relocate_equals_match_patterns(self, induced):
        other_db = random_database(seed=6300, num_graphs=10)
        engine, patterns, _ = mined_engine(seed=6202, db=other_db)
        got = engine.relocate(induced=induced, min_support=2)
        want = query.match_patterns(
            patterns,
            other_db,
            induced=induced,
            min_support=2,
            use_accel=False,
        )
        assert_same_patterns(got, want)

    def test_relocate_external_patterns(self):
        engine, _, db = mined_engine(seed=6203)
        external = GSpanMiner().mine(
            random_database(seed=6301, num_graphs=6), 2
        )
        got = engine.relocate(external)
        want = query.match_patterns(external, db, use_accel=False)
        assert_same_patterns(got, want)

    def test_no_accel_engine_identical(self):
        accel, patterns, db = mined_engine(seed=6204, use_accel=True)
        linear, _, _ = mined_engine(seed=6204, use_accel=False)
        for pattern in patterns:
            assert accel.match(pattern.graph).gids == (
                linear.match(pattern.graph).gids
            )
        # The linear engine really scanned: no pruning happened.
        assert linear.totals.candidates == linear.totals.universe

    def test_index_strictly_prunes(self):
        engine, patterns, db = mined_engine(seed=6205)
        # A pattern with labels absent from the database: zero candidates.
        alien = make_graph([9, 9], [(0, 1, 9)])
        answer = engine.match(alien)
        assert answer.gids == frozenset()
        assert answer.stats.searches == 0
        assert answer.stats.pruned == len(db)


class TestContainsDifferential:
    @pytest.mark.parametrize("induced", [False, True])
    def test_contains_equals_direct_checks(self, induced):
        engine, _, db = mined_engine(seed=6401)
        entries = engine.snapshot.entries
        for _, graph in db:
            answer = engine.contains(graph, induced=induced)
            expected = tuple(
                e.pid
                for e in entries
                if subgraph_exists(e.graph, graph, induced=induced)
            )
            assert answer.pids == expected

    @pytest.mark.parametrize("induced", [False, True])
    def test_coverage_equals_query_coverage(self, induced):
        engine, patterns, db = mined_engine(seed=6402, min_support=4)
        fraction, covered = engine.coverage(induced=induced)
        want_fraction, want_covered = query.coverage(
            patterns, db, induced=induced, use_accel=False
        )
        assert fraction == want_fraction
        assert covered == want_covered


class TestCaching:
    def test_lru_hit_on_repeat_match(self):
        engine, patterns, _ = mined_engine(seed=6501)
        pattern = next(iter(patterns)).graph
        first = engine.match(pattern)
        second = engine.match(pattern)
        assert not first.stats.lru_hit
        assert second.stats.lru_hit
        assert second.stats.searches == 0
        assert second.gids == first.gids
        assert engine.totals.lru_hits == 1

    def test_lru_respects_semantics(self):
        engine, patterns, _ = mined_engine(seed=6502)
        pattern = next(iter(patterns)).graph
        engine.match(pattern, induced=False)
        assert not engine.match(pattern, induced=True).stats.lru_hit

    def test_lru_invalidated_by_database_mutation(self):
        engine, patterns, db = mined_engine(seed=6503)
        pattern = next(iter(patterns)).graph
        engine.match(pattern)
        db[0].add_vertex(9)
        answer = engine.match(pattern)
        assert not answer.stats.lru_hit

    def test_lru_bounded(self):
        engine, patterns, _ = mined_engine(seed=6504, lru_size=2)
        graphs = [p.graph for p in patterns][:4]
        assert len(graphs) >= 3
        for graph in graphs:
            engine.match(graph)
        assert len(engine._lru) <= 2

    def test_support_cache_shared_between_queries(self):
        engine, _, db = mined_engine(seed=6505)
        for _, graph in db:
            engine.contains(graph)
        searched = engine.totals.searches
        # coverage re-asks the same (pattern, graph) pairs: all cache hits.
        engine.coverage()
        assert engine.totals.searches == searched
        assert engine.totals.support_cache_hits > 0


class TestDriftSoundness:
    @pytest.mark.parametrize("induced", [False, True])
    def test_mutated_graphs_still_answered_exactly(self, induced):
        engine, patterns, db = mined_engine(seed=6601)
        # Mutate one graph in place and replace another wholesale —
        # the index postings for both are now stale.
        target = db[0]
        target.add_vertex(target.vertex_label(0))
        target.add_edge(0, target.num_vertices - 1, 0)
        db.replace(1, make_graph([9], []))
        for pattern in patterns:
            answer = engine.match(pattern.graph, induced=induced)
            baseline = query.match(pattern.graph, db, induced=induced)
            assert answer.gids == baseline.supporting_gids

    def test_added_graph_is_searched(self):
        engine, patterns, db = mined_engine(seed=6602)
        pattern = next(iter(patterns)).graph
        db.add(777, pattern.copy())
        assert 777 in engine.match(pattern).gids


class TestMetadata:
    def test_top_k_by_support(self):
        engine, _, _ = mined_engine(seed=6701)
        top = engine.top_k(3)
        supports = [e.support for e in top]
        assert supports == sorted(supports, reverse=True)
        assert len(top) == 3

    def test_top_k_by_size(self):
        engine, _, _ = mined_engine(seed=6702)
        sizes = [e.size for e in engine.top_k(5, by="size")]
        assert sizes == sorted(sizes, reverse=True)

    def test_top_k_rejects_unknown_key(self):
        engine, _, _ = mined_engine(seed=6703)
        with pytest.raises(ValueError, match="top_k"):
            engine.top_k(3, by="color")

    def test_stats_dict_shape(self):
        engine, patterns, db = mined_engine(seed=6704)
        engine.match(next(iter(patterns)).graph)
        digest = engine.stats_dict()
        assert digest["queries"] == 1
        assert digest["patterns"] == len(patterns)
        assert digest["graphs"] == len(db)
        assert digest["by_kind"] == {"match": 1}
        assert digest["snapshot_version"] == 1


class TestEngineProperties:
    @settings(max_examples=40, deadline=None)
    @given(databases(max_graphs=5, max_vertices=6))
    def test_relocate_differential_property(self, db):
        patterns = GSpanMiner().mine(db, 2)
        if not patterns:
            return
        engine = QueryEngine(make_snapshot(patterns, db), db)
        for induced in (False, True):
            got = engine.relocate(induced=induced)
            want = query.match_patterns(
                patterns, db, induced=induced, use_accel=False
            )
            assert_same_patterns(got, want)

    @settings(max_examples=40, deadline=None)
    @given(databases(max_graphs=5, max_vertices=6))
    def test_contains_differential_property(self, db):
        patterns = GSpanMiner().mine(db, 2)
        if not patterns:
            return
        engine = QueryEngine(make_snapshot(patterns, db), db)
        entries = engine.snapshot.entries
        for _, graph in db:
            answer = engine.contains(graph)
            expected = tuple(
                e.pid for e in entries if subgraph_exists(e.graph, graph)
            )
            assert answer.pids == expected

"""Differential tests: the SQLite backend vs the in-memory baseline.

Three layers of "observationally identical", strongest last:

1. **Property round-trips** (hypothesis): any graph/pattern encodes to
   the store's row format and decodes back label- and order-exact, so a
   database pushed through SQLite iterates exactly like the dict it came
   from;
2. **In-process mining**: every miner run over a stored database
   produces byte-identical pattern dumps to the same run over the
   in-memory database;
3. **The accel matrix, end to end**: the CLI mines the same dataset with
   the database on disk under every acceleration mode (off / plans /
   flat / flat+batch / flat+shm-parallel) and all pattern records are
   byte-identical to the in-memory baseline's.  Only the header's
   ``backend`` tag and the integrity footer (which hashes the header)
   may differ.
"""

import io
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.database import GraphDatabase
from repro.mining.base import Pattern
from repro.mining.gaston import GastonMiner
from repro.mining.gspan import GSpanMiner
from repro.mining.store import dump_patterns
from repro.core.partminer import PartMiner
from repro.storage import (
    decode_graph,
    decode_pattern,
    encode_graph,
    encode_pattern,
    open_backend,
)

from .conftest import random_database
from .test_properties import connected_graphs


def pattern_text(patterns):
    buffer = io.StringIO()
    dump_patterns(patterns, buffer)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# 1. Property round-trips
# ----------------------------------------------------------------------
class TestRoundTripProperties:
    @settings(max_examples=60, deadline=None)
    @given(connected_graphs(max_vertices=7))
    def test_graph_round_trip(self, graph):
        back = decode_graph(encode_graph(graph))
        assert back.vertex_labels() == graph.vertex_labels()
        assert back.num_edges == graph.num_edges
        for v in graph.vertices():
            # Adjacency *order* must survive, not just the edge set —
            # downstream canonical codes and flat-array compiles walk
            # neighbors in dict insertion order.
            assert list(back.neighbors(v)) == list(graph.neighbors(v))
        assert encode_graph(back) == encode_graph(graph)

    @settings(max_examples=40, deadline=None)
    @given(
        connected_graphs(max_vertices=6),
        st.sets(st.integers(0, 50), min_size=1, max_size=10),
    )
    def test_pattern_round_trip(self, graph, tids):
        pattern = Pattern.from_graph(graph, tids)
        back = decode_pattern(encode_pattern(pattern))
        assert back.key == pattern.key
        assert back.tids == pattern.tids
        assert back.support == pattern.support
        assert back.graph.vertex_labels() == pattern.graph.vertex_labels()

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(connected_graphs(max_vertices=6), min_size=1, max_size=6)
    )
    def test_database_through_sqlite_is_identical(
        self, tmp_path_factory, graphs
    ):
        db = GraphDatabase.from_graphs(graphs)
        with open_backend(
            "sqlite",
            tmp_path_factory.mktemp("prop") / "prop.db",
            cache_graphs=2,
        ) as backend:
            backend.import_database(db)
            view = backend.database()
            assert view.gids() == db.gids()
            for gid, graph in db:
                got = view[gid]
                assert got.vertex_labels() == graph.vertex_labels()
                for v in graph.vertices():
                    assert list(got.neighbors(v)) == list(
                        graph.neighbors(v)
                    )


# ----------------------------------------------------------------------
# 2. In-process mining differentials
# ----------------------------------------------------------------------
MINERS = [
    pytest.param(lambda: GSpanMiner(), id="gspan"),
    pytest.param(lambda: GastonMiner(), id="gaston"),
    pytest.param(lambda: PartMiner(k=2), id="partminer"),
]


class TestMiningDifferential:
    @pytest.mark.parametrize("make_miner", MINERS)
    def test_stored_database_mines_identical_bytes(
        self, make_miner, tmp_path
    ):
        db = random_database(seed=31, num_graphs=12, n=6, extra_edges=1)
        baseline = make_miner().mine(db, 3)
        base_text = pattern_text(
            getattr(baseline, "patterns", baseline)
        )
        with open_backend(
            "sqlite", tmp_path / "mine.db", cache_graphs=3
        ) as backend:
            backend.import_database(db)
            mined = make_miner().mine(backend.database(), 3)
            got = pattern_text(getattr(mined, "patterns", mined))
        assert got == base_text

    def test_cache_smaller_than_database_still_identical(self, tmp_path):
        db = random_database(seed=32, num_graphs=16, n=6)
        baseline = pattern_text(GastonMiner().mine(db, 4))
        with open_backend(
            "sqlite", tmp_path / "small.db", cache_graphs=2
        ) as backend:
            backend.import_database(db)
            got = pattern_text(
                GastonMiner().mine(backend.database(), 4)
            )
            assert got == baseline
            # The cache was genuinely undersized, not silently grown.
            assert backend.cache.stats()["max_cached"] <= 2


# ----------------------------------------------------------------------
# 3. The accel matrix through the CLI, database on disk
# ----------------------------------------------------------------------
#: (id, global flags, mine flags) — one per acceleration mode.
ACCEL_MATRIX = [
    ("off", ["--no-accel"], []),
    ("plans", ["--no-flat"], []),
    ("flat", ["--no-batch"], []),
    ("flat+batch", [], []),
    ("flat+shm", [], ["--parallel", "--workers", "1"]),
]


def run_cli(*args):
    env = dict(os.environ, PYTHONPATH="src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.cli", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=Path(__file__).resolve().parent.parent,
    )
    assert result.returncode == 0, (args, result.stderr)
    return result.stdout


def pattern_records(path: Path) -> list[str]:
    """The pattern lines of a dump — header and footer stripped."""
    lines = path.read_text().splitlines()
    return [
        line
        for line in lines
        if line and not line.startswith("#") and '"header"' not in line
    ]


def test_accel_matrix_byte_identical_on_disk(tmp_path):
    dataset = tmp_path / "db.tve"
    run_cli("generate", "D40T8N10L10I4", str(dataset), "--seed", "9")
    baseline = tmp_path / "memory.jsonl"
    run_cli("mine", str(dataset), "0.2", "--output", str(baseline))
    want = pattern_records(baseline)
    assert want, "baseline mined nothing — dataset too sparse"
    for mode, global_flags, mine_flags in ACCEL_MATRIX:
        out = tmp_path / f"{mode}.jsonl"
        run_cli(
            *global_flags,
            "mine",
            str(dataset),
            "0.2",
            *mine_flags,
            "--backend",
            "sqlite",
            "--db-path",
            str(tmp_path / f"{mode}.db"),
            "--graph-cache",
            "6",
            "--spill-dir",
            str(tmp_path / f"spill-{mode}"),
            "--output",
            str(out),
        )
        assert pattern_records(out) == want, mode

"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import io as graph_io
from repro.mining.store import read_patterns


@pytest.fixture
def database_file(tmp_path):
    path = tmp_path / "db.tve"
    assert main(["generate", "D20T8N8L10I3", str(path), "--seed", "3"]) == 0
    return path


class TestGenerate:
    def test_writes_database(self, database_file):
        db = graph_io.read_database(database_file)
        assert len(db) == 20

    def test_seed_reproducible(self, tmp_path):
        a, b = tmp_path / "a.tve", tmp_path / "b.tve"
        main(["generate", "D10T6N6L8I3", str(a), "--seed", "5"])
        main(["generate", "D10T6N6L8I3", str(b), "--seed", "5"])
        assert a.read_text() == b.read_text()

    def test_bad_spec(self, tmp_path, capsys):
        with pytest.raises(ValueError):
            main(["generate", "NOTASPEC", str(tmp_path / "x.tve")])


class TestMine:
    @pytest.mark.parametrize(
        "algorithm", ["partminer", "gspan", "gaston", "adimine"]
    )
    def test_algorithms_run(self, database_file, capsys, algorithm):
        assert main(
            ["mine", str(database_file), "0.3", "--algorithm", algorithm]
        ) == 0
        out = capsys.readouterr().out
        assert "frequent patterns" in out

    def test_all_algorithms_agree(self, database_file, tmp_path):
        keys = []
        for algorithm in ("partminer", "gspan", "gaston"):
            out = tmp_path / f"{algorithm}.jsonl"
            main(
                [
                    "mine", str(database_file), "0.3",
                    "--algorithm", algorithm,
                    "--unit-support", "exact",
                    "--output", str(out),
                ]
            )
            patterns, meta = read_patterns(out)
            assert meta["algorithm"] == algorithm
            keys.append(patterns.keys())
        assert keys[0] == keys[1] == keys[2]

    def test_absolute_support(self, database_file, capsys):
        assert main(["mine", str(database_file), "5",
                     "--algorithm", "gspan"]) == 0

    def test_custom_lambdas(self, database_file, capsys):
        assert main(
            ["mine", str(database_file), "0.3", "--lambda1", "0",
             "--lambda2", "1"]
        ) == 0

    def test_metis_flag(self, database_file, capsys):
        assert main(["mine", str(database_file), "0.3", "--metis"]) == 0


class TestPartition:
    def test_reports_units(self, database_file, capsys):
        assert main(["partition", str(database_file), "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "unit 0" in out and "unit 2" in out
        assert "connective edges" in out

    def test_writes_unit_files(self, database_file, tmp_path, capsys):
        prefix = str(tmp_path / "unit")
        assert main(
            ["partition", str(database_file), "-k", "2",
             "--output-prefix", prefix]
        ) == 0
        for i in range(2):
            db = graph_io.read_database(f"{prefix}{i}.tve")
            assert len(db) == 20


class TestUpdate:
    def test_applies_batch(self, database_file, tmp_path, capsys):
        out = tmp_path / "updated.tve"
        assert main(
            ["update", str(database_file), str(out),
             "--fraction", "0.5", "--kind", "structural", "--ops", "2"]
        ) == 0
        before = graph_io.read_database(database_file)
        after = graph_io.read_database(out)
        assert after.total_edges() > before.total_edges()


class TestShowAndStats:
    def test_show_graph(self, database_file, capsys):
        assert main(["show", str(database_file), "--gid", "0"]) == 0
        assert capsys.readouterr().out.startswith('graph "g0"')

    def test_show_patterns(self, database_file, tmp_path, capsys):
        pattern_file = tmp_path / "p.jsonl"
        main(["mine", str(database_file), "0.3", "--algorithm", "gspan",
              "--output", str(pattern_file)])
        capsys.readouterr()
        assert main(["show", str(pattern_file), "--patterns"]) == 0
        out = capsys.readouterr().out
        assert "subgraph cluster_0" in out

    def test_stats(self, database_file, capsys):
        assert main(["stats", str(database_file)]) == 0
        out = capsys.readouterr().out
        assert "graphs:" in out
        assert "most frequent 1-edge patterns:" in out


class TestMatch:
    def test_match_reports_coverage(self, database_file, tmp_path, capsys):
        pattern_file = tmp_path / "p.jsonl"
        main(["mine", str(database_file), "0.3", "--algorithm", "gspan",
              "--output", str(pattern_file)])
        capsys.readouterr()
        assert main(["match", str(pattern_file), str(database_file)]) == 0
        out = capsys.readouterr().out
        assert "patterns occur in" in out
        assert "coverage:" in out

    def test_match_with_output(self, database_file, tmp_path, capsys):
        pattern_file = tmp_path / "p.jsonl"
        relocated_file = tmp_path / "relocated.jsonl"
        main(["mine", str(database_file), "0.3", "--algorithm", "gspan",
              "--output", str(pattern_file)])
        assert main(
            ["match", str(pattern_file), str(database_file),
             "--min-support", "0.5", "--output", str(relocated_file)]
        ) == 0
        patterns, meta = read_patterns(relocated_file)
        assert meta["relocated_from"] == str(pattern_file)
        threshold = 10  # 0.5 of 20 graphs
        assert all(p.support >= threshold for p in patterns)

    def test_match_induced_flag(self, database_file, tmp_path, capsys):
        pattern_file = tmp_path / "p.jsonl"
        main(["mine", str(database_file), "0.3", "--algorithm", "gspan",
              "--output", str(pattern_file)])
        assert main(
            ["match", str(pattern_file), str(database_file), "--induced"]
        ) == 0


class TestErrorPaths:
    def test_mine_missing_database(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["mine", str(tmp_path / "nope.tve"), "0.3"])

    def test_match_missing_patterns(self, database_file, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["match", str(tmp_path / "nope.jsonl"),
                  str(database_file)])

    def test_update_invalid_kind(self, database_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["update", str(database_file),
                  str(tmp_path / "o.tve"), "--kind", "bogus"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_mine_invalid_unit_support(self, database_file):
        with pytest.raises(ValueError, match="unit_support"):
            main(["mine", str(database_file), "0.3",
                  "--unit-support", "bogus"])

"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graph import io as graph_io
from repro.mining.store import read_patterns


@pytest.fixture
def database_file(tmp_path):
    path = tmp_path / "db.tve"
    assert main(["generate", "D20T8N8L10I3", str(path), "--seed", "3"]) == 0
    return path


class TestGenerate:
    def test_writes_database(self, database_file):
        db = graph_io.read_database(database_file)
        assert len(db) == 20

    def test_seed_reproducible(self, tmp_path):
        a, b = tmp_path / "a.tve", tmp_path / "b.tve"
        main(["generate", "D10T6N6L8I3", str(a), "--seed", "5"])
        main(["generate", "D10T6N6L8I3", str(b), "--seed", "5"])
        assert a.read_text() == b.read_text()

    def test_bad_spec(self, tmp_path, capsys):
        with pytest.raises(ValueError):
            main(["generate", "NOTASPEC", str(tmp_path / "x.tve")])


class TestMine:
    @pytest.mark.parametrize(
        "algorithm", ["partminer", "gspan", "gaston", "adimine"]
    )
    def test_algorithms_run(self, database_file, capsys, algorithm):
        assert main(
            ["mine", str(database_file), "0.3", "--algorithm", algorithm]
        ) == 0
        out = capsys.readouterr().out
        assert "frequent patterns" in out

    def test_all_algorithms_agree(self, database_file, tmp_path):
        keys = []
        for algorithm in ("partminer", "gspan", "gaston"):
            out = tmp_path / f"{algorithm}.jsonl"
            main(
                [
                    "mine", str(database_file), "0.3",
                    "--algorithm", algorithm,
                    "--unit-support", "exact",
                    "--output", str(out),
                ]
            )
            patterns, meta = read_patterns(out)
            assert meta["algorithm"] == algorithm
            keys.append(patterns.keys())
        assert keys[0] == keys[1] == keys[2]

    def test_absolute_support(self, database_file, capsys):
        assert main(["mine", str(database_file), "5",
                     "--algorithm", "gspan"]) == 0

    def test_custom_lambdas(self, database_file, capsys):
        assert main(
            ["mine", str(database_file), "0.3", "--lambda1", "0",
             "--lambda2", "1"]
        ) == 0

    def test_metis_flag(self, database_file, capsys):
        assert main(["mine", str(database_file), "0.3", "--metis"]) == 0


class TestPartition:
    def test_reports_units(self, database_file, capsys):
        assert main(["partition", str(database_file), "-k", "3"]) == 0
        out = capsys.readouterr().out
        assert "unit 0" in out and "unit 2" in out
        assert "connective edges" in out

    def test_writes_unit_files(self, database_file, tmp_path, capsys):
        prefix = str(tmp_path / "unit")
        assert main(
            ["partition", str(database_file), "-k", "2",
             "--output-prefix", prefix]
        ) == 0
        for i in range(2):
            db = graph_io.read_database(f"{prefix}{i}.tve")
            assert len(db) == 20


class TestUpdate:
    def test_applies_batch(self, database_file, tmp_path, capsys):
        out = tmp_path / "updated.tve"
        assert main(
            ["update", str(database_file), str(out),
             "--fraction", "0.5", "--kind", "structural", "--ops", "2"]
        ) == 0
        before = graph_io.read_database(database_file)
        after = graph_io.read_database(out)
        assert after.total_edges() > before.total_edges()


class TestShowAndStats:
    def test_show_graph(self, database_file, capsys):
        assert main(["show", str(database_file), "--gid", "0"]) == 0
        assert capsys.readouterr().out.startswith('graph "g0"')

    def test_show_patterns(self, database_file, tmp_path, capsys):
        pattern_file = tmp_path / "p.jsonl"
        main(["mine", str(database_file), "0.3", "--algorithm", "gspan",
              "--output", str(pattern_file)])
        capsys.readouterr()
        assert main(["show", str(pattern_file), "--patterns"]) == 0
        out = capsys.readouterr().out
        assert "subgraph cluster_0" in out

    def test_stats(self, database_file, capsys):
        assert main(["stats", str(database_file)]) == 0
        out = capsys.readouterr().out
        assert "graphs:" in out
        assert "most frequent 1-edge patterns:" in out


class TestMatch:
    def test_match_reports_coverage(self, database_file, tmp_path, capsys):
        pattern_file = tmp_path / "p.jsonl"
        main(["mine", str(database_file), "0.3", "--algorithm", "gspan",
              "--output", str(pattern_file)])
        capsys.readouterr()
        assert main(["match", str(pattern_file), str(database_file)]) == 0
        out = capsys.readouterr().out
        assert "patterns occur in" in out
        assert "coverage:" in out

    def test_match_with_output(self, database_file, tmp_path, capsys):
        pattern_file = tmp_path / "p.jsonl"
        relocated_file = tmp_path / "relocated.jsonl"
        main(["mine", str(database_file), "0.3", "--algorithm", "gspan",
              "--output", str(pattern_file)])
        assert main(
            ["match", str(pattern_file), str(database_file),
             "--min-support", "0.5", "--output", str(relocated_file)]
        ) == 0
        patterns, meta = read_patterns(relocated_file)
        assert meta["relocated_from"] == str(pattern_file)
        threshold = 10  # 0.5 of 20 graphs
        assert all(p.support >= threshold for p in patterns)

    def test_match_induced_flag(self, database_file, tmp_path, capsys):
        pattern_file = tmp_path / "p.jsonl"
        main(["mine", str(database_file), "0.3", "--algorithm", "gspan",
              "--output", str(pattern_file)])
        assert main(
            ["match", str(pattern_file), str(database_file), "--induced"]
        ) == 0


class TestErrorPaths:
    def test_mine_missing_database(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["mine", str(tmp_path / "nope.tve"), "0.3"])

    def test_match_missing_patterns(self, database_file, tmp_path):
        with pytest.raises(FileNotFoundError):
            main(["match", str(tmp_path / "nope.jsonl"),
                  str(database_file)])

    def test_update_invalid_kind(self, database_file, tmp_path):
        with pytest.raises(SystemExit):
            main(["update", str(database_file),
                  str(tmp_path / "o.tve"), "--kind", "bogus"])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_mine_invalid_unit_support(self, database_file):
        with pytest.raises(ValueError, match="unit_support"):
            main(["mine", str(database_file), "0.3",
                  "--unit-support", "bogus"])


class TestExitCodes:
    """The documented exit-code contract (see `repro --help`)."""

    def test_corrupt_pattern_file_exits_3(self, database_file, tmp_path,
                                          capsys):
        bad = tmp_path / "patterns.jsonl"
        bad.write_text("this is not a pattern store\n")
        assert main(["match", str(bad), str(database_file)]) == 3
        err = capsys.readouterr().err
        assert "corrupt artifact" in err
        assert err.count("\n") == 1  # one-line diagnostic
        # The bad bytes were quarantined for post-mortem.
        assert (tmp_path / "patterns.jsonl.corrupt").is_dir()

    def test_parse_error_exits_4(self, tmp_path, capsys):
        bad = tmp_path / "db.tve"
        bad.write_text("t # 0\nv 0 1\ne 0 zero 1\n")
        assert main(["stats", str(bad)]) == 4
        err = capsys.readouterr().err
        assert "parse error" in err
        assert f"{bad}:3" in err  # provenance: file and line

    def test_on_parse_error_skip_recovers(self, tmp_path, capsys):
        bad = tmp_path / "db.tve"
        bad.write_text(
            "t # 0\nv 0 1\ne 0 zero 1\nt # 1\nv 0 1\nv 1 1\ne 0 1 2\n"
        )
        assert main(["stats", str(bad), "--on-parse-error", "skip"]) == 0
        captured = capsys.readouterr()
        assert "1 skipped" in captured.err
        assert "graphs:          1" in captured.out

    def test_budget_exceeded_exits_5(self, capsys, monkeypatch):
        from repro.resilience.errors import BudgetExceeded

        import repro.cli as cli_module

        def exhausted(args):
            raise BudgetExceeded("mining budget spent")

        parser = cli_module.build_parser()
        args = parser.parse_args(["stats", "whatever"])
        monkeypatch.setattr(args, "func", exhausted)
        monkeypatch.setattr(
            cli_module, "build_parser",
            lambda: type("P", (), {
                "parse_args": staticmethod(lambda argv=None: args)
            })(),
        )
        assert cli_module.main(["stats", "whatever"]) == 5
        assert "budget exceeded" in capsys.readouterr().err

    def test_usage_error_exits_2(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["mine"])  # missing required arguments
        assert excinfo.value.code == 2

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "corrupt stored artifact" in out

    def test_corrupted_checksummed_store_exits_3(self, database_file,
                                                 tmp_path):
        patterns = tmp_path / "p.jsonl"
        assert main(["mine", str(database_file), "0.4",
                     "--algorithm", "gspan",
                     "--output", str(patterns)]) == 0
        raw = bytearray(patterns.read_bytes())
        raw[len(raw) // 3] ^= 0x10
        patterns.write_bytes(bytes(raw))
        assert main(["match", str(patterns), str(database_file)]) == 3

"""Tests for the brute-force oracle miner."""

from repro.graph.canonical import canonical_code
from repro.graph.database import GraphDatabase
from repro.mining.bruteforce import (
    BruteForceMiner,
    connected_edge_subgraph_codes,
)

from .conftest import make_graph, path_graph, triangle


class TestEnumeration:
    def test_triangle_subgraphs(self):
        codes = connected_edge_subgraph_codes(triangle(labels=(0, 1, 2)))
        # 3 single edges + 3 two-paths + 1 triangle = 7 distinct.
        assert len(codes) == 7

    def test_uniform_triangle_subgraphs(self):
        codes = connected_edge_subgraph_codes(triangle())
        # With uniform labels: 1 edge class, 1 path class, 1 triangle.
        assert len(codes) == 3

    def test_max_size_bound(self):
        codes = connected_edge_subgraph_codes(triangle(), max_size=2)
        assert all(
            graph.num_edges <= 2 for graph in codes.values()
        )
        assert len(codes) == 2

    def test_path_subgraph_count(self):
        # Uniform path of 4 edges: distinct classes = paths of length 1..4.
        codes = connected_edge_subgraph_codes(path_graph(5))
        assert len(codes) == 4

    def test_representatives_match_keys(self):
        codes = connected_edge_subgraph_codes(triangle(labels=(0, 0, 1)))
        for key, graph in codes.items():
            assert canonical_code(graph) == key


class TestMining:
    def test_mine_small_db(self, small_db):
        result = BruteForceMiner().mine(small_db, 3)
        for p in result:
            assert p.support >= 3
        # the shared path 0-1-1 (labels) must be found
        shared = make_graph([0, 1, 1], [(0, 1, 0), (1, 2, 1)])
        assert canonical_code(shared) in result.keys()

    def test_tid_lists(self, small_db):
        result = BruteForceMiner().mine(small_db, 2)
        for p in result:
            assert len(p.tids) == p.support
            assert p.tids <= {0, 1, 2}

    def test_empty_database(self):
        assert len(BruteForceMiner().mine(GraphDatabase(), 1)) == 0

    def test_max_size(self, small_db):
        bounded = BruteForceMiner(max_size=1).mine(small_db, 1)
        assert all(p.size == 1 for p in bounded)

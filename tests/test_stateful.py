"""Model-based (stateful) property tests with hypothesis.

Two state machines exercise the core data structures against trivially
correct reference models:

* :class:`LabeledGraphMachine` — random interleavings of graph mutations,
  checked against a dict/set reference after every step;
* :class:`PatternSetMachine` — add/add_union/remove sequences, checked
  against a plain dict keyed by canonical code.
"""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.graph.labeled_graph import LabeledGraph
from repro.mining.base import Pattern, PatternSet

from .conftest import path_graph, star_graph, triangle

LABELS = st.integers(0, 3)


class LabeledGraphMachine(RuleBasedStateMachine):
    """LabeledGraph vs a (labels list, edge dict) reference model."""

    def __init__(self):
        super().__init__()
        self.graph = LabeledGraph()
        self.ref_labels = []
        self.ref_edges = {}  # (u, v) u<v -> label

    # ---- rules ------------------------------------------------------
    @rule(label=LABELS)
    def add_vertex(self, label):
        vid = self.graph.add_vertex(label)
        self.ref_labels.append(label)
        assert vid == len(self.ref_labels) - 1

    @precondition(lambda self: len(self.ref_labels) >= 2)
    @rule(data=st.data(), label=LABELS)
    def add_edge(self, data, label):
        n = len(self.ref_labels)
        u = data.draw(st.integers(0, n - 1))
        v = data.draw(st.integers(0, n - 1))
        key = (min(u, v), max(u, v))
        if u == v or key in self.ref_edges:
            return
        self.graph.add_edge(u, v, label)
        self.ref_edges[key] = label

    @precondition(lambda self: bool(self.ref_edges))
    @rule(data=st.data())
    def remove_edge(self, data):
        key = data.draw(st.sampled_from(sorted(self.ref_edges)))
        self.graph.remove_edge(*key)
        del self.ref_edges[key]

    @precondition(lambda self: bool(self.ref_labels))
    @rule(data=st.data(), label=LABELS)
    def relabel_vertex(self, data, label):
        v = data.draw(st.integers(0, len(self.ref_labels) - 1))
        self.graph.set_vertex_label(v, label)
        self.ref_labels[v] = label

    @precondition(lambda self: bool(self.ref_edges))
    @rule(data=st.data(), label=LABELS)
    def relabel_edge(self, data, label):
        key = data.draw(st.sampled_from(sorted(self.ref_edges)))
        self.graph.set_edge_label(*key, label)
        self.ref_edges[key] = label

    # ---- invariants --------------------------------------------------
    @invariant()
    def counts_match(self):
        assert self.graph.num_vertices == len(self.ref_labels)
        assert self.graph.num_edges == len(self.ref_edges)

    @invariant()
    def labels_match(self):
        assert self.graph.vertex_labels() == self.ref_labels

    @invariant()
    def edges_match(self):
        got = {
            (u, v): label for u, v, label in self.graph.edges()
        }
        assert got == self.ref_edges

    @invariant()
    def degrees_match(self):
        for v in range(len(self.ref_labels)):
            expected = sum(1 for key in self.ref_edges if v in key)
            assert self.graph.degree(v) == expected

    @invariant()
    def histogram_matches(self):
        vcounts, ecounts = self.graph.label_histogram()
        ref_v = {}
        for label in self.ref_labels:
            ref_v[label] = ref_v.get(label, 0) + 1
        ref_e = {}
        for label in self.ref_edges.values():
            ref_e[label] = ref_e.get(label, 0) + 1
        assert vcounts == ref_v
        assert ecounts == ref_e


class PatternSetMachine(RuleBasedStateMachine):
    """PatternSet vs a dict keyed by canonical code."""

    GRAPHS = [
        triangle(),
        path_graph(2),
        path_graph(3),
        path_graph(4),
        star_graph(3),
        triangle(labels=(0, 0, 1)),
    ]

    def __init__(self):
        super().__init__()
        self.patterns = PatternSet()
        self.reference = {}  # key -> frozenset tids

    @rule(
        index=st.integers(0, len(GRAPHS) - 1),
        tids=st.frozensets(st.integers(0, 6), max_size=5),
    )
    def add(self, index, tids):
        pattern = Pattern.from_graph(self.GRAPHS[index], tids)
        self.patterns.add(pattern)
        current = self.reference.get(pattern.key)
        if current is None or len(tids) > len(current):
            self.reference[pattern.key] = frozenset(tids)

    @rule(
        index=st.integers(0, len(GRAPHS) - 1),
        tids=st.frozensets(st.integers(0, 6), max_size=5),
    )
    def add_union(self, index, tids):
        pattern = Pattern.from_graph(self.GRAPHS[index], tids)
        self.patterns.add_union(pattern)
        current = self.reference.get(pattern.key, frozenset())
        self.reference[pattern.key] = current | frozenset(tids)

    @precondition(lambda self: bool(self.reference))
    @rule(data=st.data())
    def remove(self, data):
        key = data.draw(st.sampled_from(sorted(self.reference)))
        self.patterns.remove(key)
        del self.reference[key]

    @invariant()
    def keys_match(self):
        assert self.patterns.keys() == set(self.reference)

    @invariant()
    def tids_and_support_match(self):
        for key, tids in self.reference.items():
            pattern = self.patterns.get(key)
            assert pattern is not None
            assert pattern.tids == tids
            assert pattern.support == len(tids)

    @invariant()
    def size_index_consistent(self):
        for size in {p.size for p in self.patterns}:
            assert all(
                p.size == size for p in self.patterns.of_size(size)
            )


TestLabeledGraphModel = LabeledGraphMachine.TestCase
TestLabeledGraphModel.settings = settings(
    max_examples=30, stateful_step_count=30, deadline=None
)

TestPatternSetModel = PatternSetMachine.TestCase
TestPatternSetModel.settings = settings(
    max_examples=25, stateful_step_count=25, deadline=None
)

"""Tests for the FSG (Apriori-style) baseline miner."""

import random

from repro.graph.database import GraphDatabase
from repro.mining.fsg import FSGMiner
from repro.mining.gspan import GSpanMiner

from .conftest import random_database, triangle


class TestAgainstGSpan:
    def test_small_db(self, small_db):
        for sup in (1, 2, 3):
            fsg = FSGMiner().mine(small_db, sup)
            gspan = GSpanMiner().mine(small_db, sup)
            assert fsg.keys() == gspan.keys()

    def test_random_dbs_with_tids(self):
        rng = random.Random(70)
        for seed in range(5):
            db = random_database(seed=seed + 300, num_graphs=9, n=6)
            sup = rng.choice([2, 3])
            fsg = FSGMiner().mine(db, sup)
            gspan = GSpanMiner().mine(db, sup)
            assert fsg.keys() == gspan.keys()
            for p in fsg:
                assert p.tids == gspan.get(p.key).tids

    def test_max_size(self, medium_db):
        fsg = FSGMiner(max_size=2).mine(medium_db, 3)
        gspan = GSpanMiner(max_size=2).mine(medium_db, 3)
        assert fsg.keys() == gspan.keys()

    def test_cyclic_patterns_found(self):
        db = GraphDatabase.from_graphs([triangle(), triangle()])
        result = FSGMiner().mine(db, 2)
        assert any(p.graph.num_edges == 3 for p in result)


class TestStats:
    def test_levels_and_candidates_recorded(self, medium_db):
        miner = FSGMiner()
        result = miner.mine(medium_db, 3)
        assert miner.stats.levels >= 2
        assert len(miner.stats.candidates_per_level) == miner.stats.levels
        assert sum(miner.stats.frequent_per_level) == len(result)

    def test_fsg_generates_more_candidates_than_gspan(self, medium_db):
        """The historical point: level-wise joins over-generate."""
        fsg = FSGMiner()
        fsg.mine(medium_db, 3)
        gspan = GSpanMiner()
        gspan.mine(medium_db, 3)
        # Both counts include the frequent 1-edge seeds; FSG should need
        # at least as many candidates as gSpan's pattern-growth.
        assert (
            fsg.stats.total_candidates
            >= gspan.stats.candidates_generated * 0.8
        )

    def test_empty_database(self):
        assert len(FSGMiner().mine(GraphDatabase(), 1)) == 0

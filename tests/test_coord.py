"""Sharded mining coordinator: placement, leases, recovery, identity.

The headline test is the chaos gate the ISSUE demands: shards bigger
than the per-worker graph-cache budget, random SIGKILLs mid-shard, one
corrupted shard-result artifact — and the final pattern artifact must
be byte-identical to the single-process run, with the telemetry
recording the lease expiries and reassignments that happened on the
way.
"""

import io
import multiprocessing
import os
import signal
import warnings

import pytest

from repro.coord import CoordConfig, Coordinator, ShardPlan
from repro.coord.lease import LeaseTable, ShardRecord
from repro.core.partminer import PartMiner
from repro.mining.gaston import GastonMiner
from repro.mining.store import dump_patterns
from repro.resilience.faults import FaultPlan
from repro.runtime import RuntimeConfig
from repro.runtime.checkpoint import CheckpointMismatch
from repro.runtime.telemetry import RunTelemetry

from .conftest import random_database

SUPPORT = 3

#: Fast supervision settings for tests: tiny backoffs, quick heartbeats.
FAST = RuntimeConfig(backoff_base=0.001, backoff_max=0.01, kill_grace=2.0)


def pattern_text(patterns):
    buffer = io.StringIO()
    dump_patterns(patterns, buffer)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_covers_every_graph_exactly_once(self):
        db = random_database(seed=11, num_graphs=13, n=5)
        plan = ShardPlan.build(db, 4)
        seen = [gid for gids in plan.assignments for gid in gids]
        assert sorted(seen) == sorted(db.gids())
        assert len(seen) == len(set(seen))

    def test_round_robin_balances_counts(self):
        db = random_database(seed=12, num_graphs=12, n=5)
        plan = ShardPlan.build(db, 4)
        assert [g for g, _ in plan.sizes] == [3, 3, 3, 3]

    def test_density_ranking_spreads_dense_graphs(self):
        # 4 dense graphs + 4 sparse ones: the density deal must place
        # exactly one dense graph on each of 4 shards — a contiguous
        # split would pile them onto one straggler.
        from repro.graph.labeled_graph import LabeledGraph

        def clique(n):
            g = LabeledGraph()
            for i in range(n):
                g.add_vertex(0)
            for i in range(n):
                for j in range(i + 1, n):
                    g.add_edge(i, j, 0)
            return g

        def path(n):
            g = LabeledGraph()
            for i in range(n):
                g.add_vertex(0)
            for i in range(n - 1):
                g.add_edge(i, i + 1, 0)
            return g

        from repro.graph.database import GraphDatabase

        db = GraphDatabase(
            [(gid, clique(6)) for gid in range(4)]
            + [(gid, path(6)) for gid in range(4, 8)]
        )
        plan = ShardPlan.build(db, 4)
        for gids in plan.assignments:
            dense = [gid for gid in gids if gid < 4]
            assert len(dense) == 1

    def test_deterministic(self):
        db = random_database(seed=13, num_graphs=10, n=5)
        assert ShardPlan.build(db, 3) == ShardPlan.build(db, 3)

    def test_chunks_and_thresholds(self):
        db = random_database(seed=14, num_graphs=10, n=5)
        plan = ShardPlan.build(db, 2)  # 5 gids per shard
        chunks = plan.chunks(0, 2)
        assert [len(c) for c in chunks] == [2, 2, 1]
        assert plan.chunks(0, 0) == [plan.shard_gids(0)]
        # ceil(7/2) = 4 per shard, then ceil(4/3) = 2 per chunk.
        assert plan.shard_threshold(7) == 4
        assert plan.chunk_threshold(7, 0, 2) == 2
        assert plan.chunk_threshold(1, 0, 1) == 1  # floors at 1

    def test_dict_round_trip(self):
        db = random_database(seed=15, num_graphs=9, n=5)
        plan = ShardPlan.build(db, 4)
        assert ShardPlan.from_dict(plan.to_dict()) == plan

    def test_edge_balance_round_trip_and_manifest_compat(self):
        db = random_database(seed=15, num_graphs=9, n=5)
        plan = ShardPlan.build(db, 4, balance="edges")
        assert plan.to_dict()["balance"] == "edges"
        assert ShardPlan.from_dict(plan.to_dict()) == plan
        # Old manifests carry no balance key and must load as density.
        legacy = ShardPlan.build(db, 4).to_dict()
        assert "balance" not in legacy
        assert ShardPlan.from_dict(legacy).balance == "density"

    def test_unknown_balance_rejected(self):
        db = random_database(seed=15, num_graphs=4, n=4)
        with pytest.raises(ValueError, match="balance"):
            ShardPlan.build(db, 2, balance="bogus")

    def test_edge_balance_beats_density_on_neighborhood_skew(self):
        # Regression for the biggraph workload: a radius-1 neighborhood
        # database has near-constant density (edges/vertices ≈ 1) while
        # pivot-degree skew spreads unit sizes over orders of magnitude.
        # The density deal then degenerates to gid order and piles the
        # hub neighborhoods together; edge-LPT placement must cut the
        # summary() edge spread.
        from repro.biggraph import NeighborhoodExtractor
        from repro.graph.labeled_graph import LabeledGraph

        g = LabeledGraph()
        for i in range(120):
            g.add_vertex(i % 3)
        # One hub adjacent to everything, plus a sparse ring.
        for v in range(1, 120):
            g.add_edge(0, v, 0)
        for v in range(1, 119):
            g.add_edge(v, v + 1, 1)
        db = NeighborhoodExtractor(radius=1).extract(g)
        density = ShardPlan.build(db, 2).summary()
        edges = ShardPlan.build(db, 2, balance="edges").summary()
        assert edges["edge_spread"] < density["edge_spread"]

    def test_more_shards_than_graphs(self):
        db = random_database(seed=16, num_graphs=2, n=4)
        plan = ShardPlan.build(db, 5)
        assert sum(len(g) for g in plan.assignments) == 2
        assert plan.chunks(4, 3) == []  # empty shard -> no chunks


# ----------------------------------------------------------------------
# LeaseTable
# ----------------------------------------------------------------------
class TestLeaseTable:
    def test_expiry_is_ttl_after_last_beat(self):
        table = LeaseTable()
        lease = table.grant(0, "w0", 123, ttl=1.0)
        assert not lease.expired(lease.last_beat + 0.5)
        assert lease.expired(lease.last_beat + 1.5)
        lease.renew(lease.last_beat + 0.9)
        assert not lease.expired(lease.granted + 1.5)
        assert lease.heartbeats == 1

    def test_expire_counts_release_does_not(self):
        table = LeaseTable()
        table.grant(0, "w0", 1, ttl=1.0)
        table.grant(1, "w1", 2, ttl=1.0)
        table.expire(0)
        table.release(1)
        assert table.expiries == 1
        assert table.holder(0) is None and table.holder(1) is None

    def test_reassigned_grant_counts(self):
        table = LeaseTable()
        table.grant(0, "w0", 1, ttl=1.0)
        table.expire(0)
        table.grant(0, "w1", 2, ttl=1.0, reassigned=True)
        assert table.reassignments == 1
        assert table.holder(0).worker == "w1"


# ----------------------------------------------------------------------
# Coordinator behaviour
# ----------------------------------------------------------------------
def test_sharded_run_matches_serial_byte_for_byte(tmp_path):
    db = random_database(seed=21, num_graphs=12, n=6, extra_edges=2)
    baseline = pattern_text(GastonMiner().mine(db, SUPPORT))
    config = CoordConfig(
        shards=4, workers=2, chunk_size=2, heartbeat_interval=0.05,
        runtime=FAST,
    )
    result = Coordinator(config, tmp_path / "run").mine(db, SUPPORT)
    assert pattern_text(result.patterns) == baseline
    assert all(
        record["status"] == "committed"
        for record in result.telemetry.coord["shards"]
    )


def test_chaos_gate_kills_and_corruption_still_byte_identical(tmp_path):
    """The acceptance scenario from the ISSUE, end to end.

    Shards of 6 graphs mined under a 2-graph per-worker cache budget
    (out-of-core), chaos SIGKILLing workers mid-shard and flipping a
    bit in one committed shard-result artifact — the final patterns are
    byte-identical to the single-process run and telemetry shows the
    recovery story.
    """
    db = random_database(seed=22, num_graphs=24, n=6, extra_edges=2)
    baseline = pattern_text(GastonMiner().mine(db, SUPPORT))

    kills = []

    def on_event(kind, **ctx):
        # SIGKILL the first two workers the moment they checkpoint
        # their first chunk — mid-shard, progress already durable.
        if kind == "unit" and len(kills) < 2 and ctx["pid"] not in kills:
            kills.append(ctx["pid"])
            try:
                os.kill(ctx["pid"], signal.SIGKILL)
            except ProcessLookupError:
                pass

    plan = FaultPlan(seed=0)
    plan.inject("coord.shard_result", corrupt="flip", times=1)

    config = CoordConfig(
        shards=4,
        workers=2,
        chunk_size=2,
        heartbeat_interval=0.03,
        mem_budget=2,  # < 6 graphs per shard: the out-of-core regime
        runtime=RuntimeConfig(
            backoff_base=0.001, backoff_max=0.01, kill_grace=2.0,
            max_retries=4,
        ),
    )
    run_dir = tmp_path / "run"
    with plan.active():
        result = Coordinator(
            config, run_dir, on_event=on_event
        ).mine(db, SUPPORT)

    assert pattern_text(result.patterns) == baseline
    assert len(kills) == 2
    assert any(f.site == "coord.shard_result" for f in plan.fired)
    assert (run_dir / "spill.db").exists()  # workers streamed SQLite

    coord = result.telemetry.coord
    counters = coord["counters"]
    assert counters["lease_expiries"] >= 1
    assert counters["reassignments"] >= 1
    assert counters["degraded"] == 0
    outcomes = [
        attempt["outcome"]
        for shard in coord["shards"]
        for attempt in shard["attempts"]
    ]
    assert "result-corrupt" in outcomes
    # A killed shard's successor resumed from chunk checkpoints.
    assert sum(
        attempt["resumed_units"]
        for shard in coord["shards"]
        for attempt in shard["attempts"]
    ) >= 1

    # The telemetry artifact round-trips with the coord digest intact.
    loaded = RunTelemetry.load(run_dir / "telemetry.json")
    assert loaded.coord == coord
    assert "4 units" in loaded.format_summary()


def _mine_and_die(run_dir, seed):
    """Child process: run the coordinator, SIGKILL ourselves mid-run."""
    db = random_database(seed=seed, num_graphs=16, n=6, extra_edges=2)
    progressed = [0]

    def on_event(kind, **ctx):
        if kind == "unit":
            progressed[0] += 1
            if progressed[0] >= 3:
                os._exit(17)

    config = CoordConfig(
        shards=4, workers=2, chunk_size=2, heartbeat_interval=0.05,
        runtime=FAST,
    )
    Coordinator(config, run_dir, on_event=on_event).mine(db, SUPPORT)
    os._exit(0)  # pragma: no cover - the kill should land first


def test_killed_coordinator_resumes_from_sqlite_checkpoints(tmp_path):
    """Kill the whole coordinator process after unit i; resume; identical."""
    seed = 23
    run_dir = tmp_path / "run"
    proc = multiprocessing.Process(
        target=_mine_and_die, args=(run_dir, seed)
    )
    proc.start()
    proc.join(120)
    assert proc.exitcode == 17, "the staged mid-run death did not land"

    db = random_database(seed=seed, num_graphs=16, n=6, extra_edges=2)
    baseline = pattern_text(GastonMiner().mine(db, SUPPORT))
    config = CoordConfig(
        shards=4, workers=2, chunk_size=2, heartbeat_interval=0.05,
        runtime=FAST,
    )
    result = Coordinator(config, run_dir).mine(db, SUPPORT)
    assert pattern_text(result.patterns) == baseline
    # The first run's durable progress was adopted, not re-mined:
    # either whole committed shards or checkpointed chunks.
    adopted = sum(
        attempt["resumed_units"]
        for shard in result.telemetry.coord["shards"]
        for attempt in shard["attempts"]
    )
    resumed_commits = sum(
        1
        for shard in result.telemetry.coord["shards"]
        for attempt in shard["attempts"]
        if attempt["outcome"] == "resumed-commit"
    )
    assert adopted + resumed_commits >= 1


def test_sqlite_backed_database_is_referenced_not_respilled(tmp_path):
    """A database already in a SQLite backend is streamed in place."""
    from repro.storage import open_backend

    db = random_database(seed=27, num_graphs=12, n=5, extra_edges=1)
    baseline = pattern_text(GastonMiner().mine(db, SUPPORT))
    with open_backend("sqlite", tmp_path / "graphs.db") as backend:
        backend.import_database(db)
        stored = backend.database()
        config = CoordConfig(
            shards=3, workers=2, heartbeat_interval=0.05,
            mem_budget=2, runtime=FAST,
        )
        run_dir = tmp_path / "run"
        result = Coordinator(config, run_dir).mine(stored, SUPPORT)
    assert pattern_text(result.patterns) == baseline
    assert not (run_dir / "spill.db").exists()  # referenced in place


def test_run_dir_pins_the_plan(tmp_path):
    db = random_database(seed=24, num_graphs=8, n=5)
    config = CoordConfig(shards=2, heartbeat_interval=0.05, runtime=FAST)
    Coordinator(config, tmp_path / "run").mine(db, SUPPORT)
    other = CoordConfig(shards=4, heartbeat_interval=0.05, runtime=FAST)
    with pytest.raises(CheckpointMismatch):
        Coordinator(other, tmp_path / "run").mine(db, SUPPORT)
    # The edge cap is identity too: checkpoints and committed shard
    # results mined uncapped must not be adopted by a capped resume.
    with pytest.raises(CheckpointMismatch):
        Coordinator(config, tmp_path / "run").mine(db, SUPPORT, max_size=3)


def test_serial_fallback_degrades_exactly(tmp_path):
    """Every worker attempt lost -> in-process fallback, same patterns."""
    db = random_database(seed=25, num_graphs=8, n=5, extra_edges=1)
    baseline = pattern_text(GastonMiner().mine(db, SUPPORT))

    def kill_on_lease(kind, **ctx):
        if kind == "lease":
            try:
                os.kill(ctx["pid"], signal.SIGKILL)
            except ProcessLookupError:
                pass

    config = CoordConfig(
        shards=2, workers=1, heartbeat_interval=0.05,
        runtime=RuntimeConfig(
            backoff_base=0.001, backoff_max=0.01, kill_grace=2.0,
            max_retries=1,
        ),
    )
    result = Coordinator(
        config, tmp_path / "run", on_event=kill_on_lease
    ).mine(db, SUPPORT)
    assert pattern_text(result.patterns) == baseline
    coord = result.telemetry.coord
    assert coord["counters"]["degraded"] == 2
    assert all(
        shard["status"] == "degraded" for shard in coord["shards"]
    )


def test_partminer_shards_delegates_to_coordinator(tmp_path):
    db = random_database(seed=26, num_graphs=10, n=5, extra_edges=1)
    serial = PartMiner(k=2).mine(db, SUPPORT)
    sharded = PartMiner(
        shards=2,
        run_dir=tmp_path / "run",
        coord=CoordConfig(shards=2, heartbeat_interval=0.05, runtime=FAST),
    ).mine(db, SUPPORT)
    assert pattern_text(sharded.patterns) == pattern_text(serial.patterns)
    assert sharded.telemetry is not None
    assert sharded.telemetry.coord["counters"]["retries"] == 0
    assert len(sharded.unit_results) == 2


def test_shard_record_round_trip():
    record = ShardRecord(shard=3, graphs=5, edges=40)
    record.lease_expiries = 2
    assert ShardRecord.from_dict(record.to_dict()) == record


def test_chunk_support_collapse_warns(tmp_path):
    """Chunk-local threshold 1 with an uncapped size is almost always a
    shard/support misconfiguration (support-1 enumeration is unbounded
    in pattern size) — the coordinator must say so up front."""
    db = random_database(seed=27, num_graphs=12, n=5, extra_edges=1)
    config = CoordConfig(
        shards=4, chunk_size=2, heartbeat_interval=0.05, runtime=FAST
    )
    with pytest.warns(RuntimeWarning, match="chunk-local support 1"):
        Coordinator(config, tmp_path / "warn").mine(db, SUPPORT)
    # Capping the size makes the same configuration legitimate.
    with warnings.catch_warnings():
        warnings.simplefilter("error", RuntimeWarning)
        Coordinator(config, tmp_path / "capped").mine(
            db, SUPPORT, max_size=4
        )

"""Cross-cutting edge cases: sparse gids, degenerate inputs, delay knobs."""

import time

import pytest

from repro.core.incremental import IncrementalPartMiner
from repro.core.partminer import PartMiner
from repro.graph.database import GraphDatabase
from repro.mining.adi.adimine import ADIMiner
from repro.mining.adi.storage import BlockStorage
from repro.mining.gspan import GSpanMiner
from repro.updates.model import RelabelVertex

from .conftest import random_database, random_graph, triangle
import random


def sparse_gid_database(seed=1000):
    """Gids are non-contiguous and unordered: 42, 7, 1003, ..."""
    rng = random.Random(seed)
    gids = [42, 7, 1003, 256, 99, 13, 777, 3]
    return GraphDatabase(
        (gid, random_graph(rng, 6, 2)) for gid in gids
    )


class TestSparseGids:
    def test_gspan_tids_use_real_gids(self):
        db = sparse_gid_database()
        result = GSpanMiner().mine(db, 3)
        valid = set(db.gids())
        for p in result:
            assert p.tids <= valid

    def test_partminer_exact_with_sparse_gids(self):
        db = sparse_gid_database()
        truth = GSpanMiner().mine(db, 3)
        result = PartMiner(k=3, unit_support="exact").mine(db, 3)
        assert result.patterns.keys() == truth.keys()
        for p in result.patterns:
            assert p.tids == truth.get(p.key).tids

    def test_incremental_with_sparse_gids(self):
        db = sparse_gid_database()
        inc = IncrementalPartMiner(
            k=2, unit_support="exact", recheck_known=True
        )
        inc.initial_mine(db, 3)
        result = inc.apply_updates([RelabelVertex(1003, 0, 9)])
        truth = GSpanMiner().mine(inc.database, 3)
        assert result.patterns.keys() == truth.keys()

    def test_adimine_with_sparse_gids(self):
        db = sparse_gid_database()
        with ADIMiner() as miner:
            result = miner.mine(db, 3)
        assert result.keys() == GSpanMiner().mine(db, 3).keys()


class TestDegenerateDatabases:
    def test_single_graph_database(self):
        db = GraphDatabase.from_graphs([triangle()])
        result = PartMiner(k=2).mine(db, 1)
        truth = GSpanMiner().mine(db, 1)
        assert result.patterns.keys() == truth.keys()

    def test_database_of_single_edges(self):
        from repro.graph.labeled_graph import LabeledGraph

        db = GraphDatabase.from_graphs(
            [LabeledGraph.single_edge(0, 0, 1) for _ in range(5)]
        )
        result = PartMiner(k=2).mine(db, 3)
        assert len(result.patterns) == 1
        assert next(iter(result.patterns)).support == 5

    def test_no_frequent_patterns_at_all(self):
        from repro.graph.labeled_graph import LabeledGraph

        db = GraphDatabase.from_graphs(
            [LabeledGraph.single_edge(i, i, i) for i in range(4)]
        )
        result = PartMiner(k=2).mine(db, 2)
        assert len(result.patterns) == 0

    def test_identical_graphs(self):
        db = GraphDatabase.from_graphs([triangle()] * 6)
        result = PartMiner(k=2).mine(db, 6)
        truth = GSpanMiner().mine(db, 6)
        assert result.patterns.keys() == truth.keys()
        for p in result.patterns:
            assert p.support == 6


class TestReadDelay:
    def test_delay_slows_uncached_reads(self):
        with BlockStorage(
            page_size=32, cache_pages=0, read_delay=0.005
        ) as storage:
            page = storage.allocate()
            storage.write_page(page, b"x")
            start = time.perf_counter()
            for _ in range(10):
                storage.read_page(page)
            elapsed = time.perf_counter() - start
            assert elapsed >= 0.05

    def test_cache_hits_skip_delay(self):
        with BlockStorage(
            page_size=32, cache_pages=4, read_delay=0.05
        ) as storage:
            page = storage.allocate()
            storage.write_page(page, b"x")  # now cached
            start = time.perf_counter()
            for _ in range(20):
                storage.read_page(page)
            assert time.perf_counter() - start < 0.05

    def test_default_no_delay(self):
        with BlockStorage(page_size=32, cache_pages=0) as storage:
            page = storage.allocate()
            storage.write_page(page, b"x")
            start = time.perf_counter()
            for _ in range(100):
                storage.read_page(page)
            assert time.perf_counter() - start < 0.5


class TestMergeJoinThresholds:
    def test_threshold_one_keeps_everything_frequent(self):
        from repro.core.mergejoin import merge_join
        from repro.mining.bruteforce import BruteForceMiner
        from repro.partition.dbpartition import db_partition

        db = random_database(seed=1010, num_graphs=5, n=5)
        tree = db_partition(db, 2)
        miner = BruteForceMiner()
        left = miner.mine(tree.units()[0].database, 1)
        right = miner.mine(tree.units()[1].database, 1)
        merged = merge_join(db, left, right, 1)
        want = GSpanMiner().mine(db, 1)
        assert merged.keys() == want.keys()

    def test_threshold_above_database_size(self):
        from repro.core.mergejoin import merge_join
        from repro.mining.base import PatternSet

        db = random_database(seed=1011, num_graphs=4, n=5)
        merged = merge_join(db, PatternSet(), PatternSet(), 99)
        assert len(merged) == 0

"""Checkpoint persistence properties and interrupted-run resume.

Two layers:

* Hypothesis round-trips — any :class:`PatternSet` survives
  persist -> load -> persist byte-identically (the store format is a
  function of the set, not of the writing process);
* crash realism — a parallel run is *killed* (``os._exit`` from a child
  process) after unit *i*; relaunching with the same run directory resumes
  from the checkpoints, mines only the remaining units, and produces the
  same answer as a never-interrupted run.
"""

from __future__ import annotations

import io
import multiprocessing
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partminer import PartMiner, resolve_unit_threshold
from repro.mining.base import Pattern, PatternSet
from repro.mining.gaston import GastonMiner
from repro.mining.store import dump_patterns, load_patterns
from repro.partition.dbpartition import db_partition
from repro.runtime import (
    CheckpointMismatch,
    CheckpointStore,
    RuntimeConfig,
    run_unit_mining,
)

from .conftest import random_database
from .test_properties import connected_graphs


# ----------------------------------------------------------------------
# Hypothesis: persist -> load -> persist is the identity.
# ----------------------------------------------------------------------
@st.composite
def pattern_sets(draw, max_patterns=6):
    count = draw(st.integers(0, max_patterns))
    patterns = PatternSet()
    for _ in range(count):
        graph = draw(connected_graphs(max_vertices=5))
        tids = draw(st.sets(st.integers(0, 30), min_size=1, max_size=8))
        patterns.add(Pattern.from_graph(graph, tids))
    return patterns


class TestRoundTripProperties:
    @settings(max_examples=40, deadline=None)
    @given(pattern_sets())
    def test_persist_load_persist_is_identity(self, patterns):
        first = io.StringIO()
        dump_patterns(patterns, first, meta={"unit": 3})
        loaded, meta = load_patterns(io.StringIO(first.getvalue()))
        assert meta == {"unit": 3, "backend": "memory"}
        assert loaded.keys() == patterns.keys()
        for pattern in loaded:
            assert pattern.tids == patterns.get(pattern.key).tids
            assert pattern.support == patterns.get(pattern.key).support
        second = io.StringIO()
        dump_patterns(loaded, second, meta={"unit": 3})
        assert second.getvalue() == first.getvalue()

    @settings(max_examples=15, deadline=None)
    @given(pattern_sets(max_patterns=4))
    def test_store_round_trip_on_disk(self, tmp_path_factory, patterns):
        store = CheckpointStore(
            tmp_path_factory.mktemp("cp") / "run"
        )
        store.open({"units": 1, "thresholds": [1]})
        store.save(0, patterns, meta={"threshold": 1})
        loaded = store.load(0)
        assert loaded.keys() == patterns.keys()
        for pattern in loaded:
            assert pattern.tids == patterns.get(pattern.key).tids


class TestCheckpointStore:
    def test_missing_unit_raises_keyerror(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.open({"units": 2, "thresholds": [1, 1]})
        assert not store.has(0)
        assert store.completed_units() == set()
        with pytest.raises(KeyError):
            store.load(0)

    def test_manifest_mismatch_refuses_resume(self, tmp_path):
        """A run directory cannot be reused for a different run."""
        store = CheckpointStore(tmp_path / "run")
        assert store.open({"units": 2, "thresholds": [2, 2]}) is False
        assert store.open({"units": 2, "thresholds": [2, 2]}) is True
        with pytest.raises(CheckpointMismatch):
            store.open({"units": 4, "thresholds": [2, 2, 2, 2]})
        with pytest.raises(CheckpointMismatch):
            store.open({"units": 2, "thresholds": [3, 3]})

    def test_unit_file_pins_its_index(self, tmp_path):
        store = CheckpointStore(tmp_path / "run")
        store.open({"units": 2, "thresholds": [1, 1]})
        store.save(1, PatternSet())
        os.replace(store.unit_path(1), store.unit_path(0))
        with pytest.raises(CheckpointMismatch):
            store.load(0)


# ----------------------------------------------------------------------
# Interrupted-run resume
# ----------------------------------------------------------------------
K = 4
KILL_AFTER = 2
SEED = 909
SUPPORT = 3


def _workload():
    db = random_database(seed=SEED, num_graphs=10, n=6, extra_edges=1)
    tree = db_partition(db, K)
    units = tree.units()
    thresholds = [
        resolve_unit_threshold(u, SUPPORT, "exact") for u in units
    ]
    return units, thresholds


def _run_and_die(run_dir: str) -> None:
    """Child-process target: start the run, die after KILL_AFTER units."""
    units, thresholds = _workload()
    completed = []

    def die_after(index, patterns, record):
        completed.append(index)
        if len(completed) >= KILL_AFTER:
            os._exit(17)  # simulated machine death: no cleanup, no flush

    store = CheckpointStore(run_dir)
    store.open({"units": len(units), "thresholds": thresholds})
    run_unit_mining(
        units,
        thresholds,
        config=RuntimeConfig(max_workers=1),  # deterministic unit order
        checkpoint=store,
        on_unit_complete=die_after,
    )
    os._exit(0)  # not reached


class TestInterruptedResume:
    def test_killed_run_resumes_from_checkpoints(self, tmp_path):
        run_dir = str(tmp_path / "run")
        units, thresholds = _workload()

        # Uninterrupted reference (no checkpointing involved).
        reference = run_unit_mining(units, thresholds)

        # Launch, get killed mid-flight after KILL_AFTER units.
        proc = multiprocessing.Process(target=_run_and_die, args=(run_dir,))
        proc.start()
        proc.join(timeout=120)
        assert proc.exitcode == 17

        store = CheckpointStore(run_dir)
        assert store.completed_units() == set(range(KILL_AFTER))

        # Relaunch with the same run directory.
        resumed = run_unit_mining(
            units,
            thresholds,
            config=RuntimeConfig(max_workers=1),
            checkpoint=store,
        )

        # Finished units were reused, only the rest were mined.
        statuses = [r.status for r in resumed.telemetry.units]
        assert statuses == ["checkpoint"] * KILL_AFTER + ["ok"] * (
            K - KILL_AFTER
        )
        mined_attempts = [
            a
            for r in resumed.telemetry.units
            for a in r.attempts
            if a.outcome == "ok"
        ]
        assert len(mined_attempts) == K - KILL_AFTER

        # And the answer matches the uninterrupted run exactly.
        for got, want in zip(
            resumed.unit_results, reference.unit_results
        ):
            assert got.keys() == want.keys()
            for p in got:
                assert p.tids == want.get(p.key).tids

    def test_partminer_resume_round_trip(self, tmp_path):
        """PartMiner with a run_dir: second run is checkpoints-only and
        pattern-identical."""
        db = random_database(seed=910, num_graphs=8, n=6, extra_edges=1)
        run_dir = tmp_path / "pm"
        miner = PartMiner(
            k=2,
            unit_support="exact",
            parallel_units=True,
            runtime=RuntimeConfig(max_workers=2),
            run_dir=run_dir,
        )
        first = miner.mine(db, 3)
        second = miner.mine(db, 3)
        assert first.telemetry.counts() == {"ok": 2}
        assert second.telemetry.counts() == {"checkpoint": 2}
        assert second.patterns.keys() == first.patterns.keys()
        serial = PartMiner(k=2, unit_support="exact").mine(db, 3)
        assert second.patterns.keys() == serial.patterns.keys()
        assert (run_dir / "telemetry.json").exists()

    def test_checkpoint_files_match_fresh_mining(self, tmp_path):
        """What lands on disk is exactly what the unit miner produces."""
        units, thresholds = _workload()
        store = CheckpointStore(tmp_path / "run")
        store.open({"units": len(units), "thresholds": thresholds})
        run_unit_mining(units, thresholds, checkpoint=store)
        for i, (unit, threshold) in enumerate(zip(units, thresholds)):
            direct = GastonMiner().mine(unit.database, threshold)
            assert store.load(i).keys() == direct.keys()

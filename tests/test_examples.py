"""Smoke tests: every shipped example runs cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    # -W error::ResourceWarning: an example leaking a handle (SQLite
    # connection, shm segment, run-dir file) is a bug, not a warning.
    proc = subprocess.run(
        [sys.executable, "-W", "error::ResourceWarning", str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "frequent patterns" in out
        assert "recall=1.000" in out

    def test_chemical_fragments(self):
        out = run_example("chemical_fragments.py")
        assert "carboxyl group" in out
        assert "acetic acid" in out

    def test_spatiotemporal_updates(self):
        out = run_example("spatiotemporal_updates.py")
        assert "epoch 0" in out
        assert "IncPartMiner:" in out
        assert "recall vs exact: 1.000" in out

    def test_parallel_units(self):
        out = run_example("parallel_units.py")
        assert "process-pool mining" in out
        assert "recall vs direct mining: 1.000" in out

    def test_resumable_mining(self):
        out = run_example("resumable_mining.py")
        assert "simulating crash" in out
        assert "checkpoints on disk: units [0, 1]" in out
        assert "2 checkpoint, 2 ok" in out
        assert "verified against direct mining" in out

    def test_disk_based_mining(self):
        out = run_example("disk_based_mining.py")
        assert "page reads" in out
        assert "index builds: 2" in out

    def test_pattern_warehouse(self):
        out = run_example("pattern_warehouse.py")
        assert "validation: OK" in out
        assert "maximal" in out

    def test_pattern_explorer(self):
        out = run_example("pattern_explorer.py")
        assert "pattern team" in out
        assert "journal replay verified" in out
        assert "month 1 -> month 2" in out

    def test_serve_and_query(self):
        out = run_example("serve_and_query.py")
        assert "published snapshot v1" in out
        assert "hot-reload: service now at snapshot v2" in out
        assert "verified against direct engine" in out
        assert "service shut down cleanly" in out

    def test_every_example_file_is_covered(self):
        scripts = {p.name for p in EXAMPLES.glob("*.py")}
        covered = {
            "quickstart.py",
            "chemical_fragments.py",
            "spatiotemporal_updates.py",
            "parallel_units.py",
            "disk_based_mining.py",
            "pattern_warehouse.py",
            "pattern_explorer.py",
            "resumable_mining.py",
            "serve_and_query.py",
        }
        assert scripts == covered, "new example missing a smoke test"

"""Tests for pattern queries (match / relocate / coverage)."""

from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import LabeledGraph
from repro.mining.base import Pattern, PatternSet
from repro.mining.gspan import GSpanMiner
from repro.query import coverage, match, match_patterns

from .conftest import make_graph, path_graph, random_database, triangle


class TestMatch:
    def test_edge_in_triangle_occurrences(self):
        db = GraphDatabase.from_graphs([triangle()])
        edge = LabeledGraph.single_edge(0, 0, 0)
        result = match(edge, db)
        assert result.support == 1
        assert len(result.occurrences) == 6  # 3 edges x 2 orientations
        assert result.per_graph() == {0: 6}

    def test_mappings_are_valid(self):
        db = GraphDatabase.from_graphs([triangle(), path_graph(4)])
        pattern = path_graph(3)
        result = match(pattern, db)
        for occurrence in result.occurrences:
            graph = db[occurrence.gid]
            phi = dict(occurrence.mapping)
            for u, v, label in pattern.edges():
                assert graph.has_edge(phi[u], phi[v])
                assert graph.edge_label(phi[u], phi[v]) == label

    def test_occurrence_cap_keeps_support_exact(self):
        db = GraphDatabase.from_graphs([triangle(), triangle()])
        edge = LabeledGraph.single_edge(0, 0, 0)
        result = match(edge, db, max_occurrences_per_graph=1)
        assert result.support == 2
        assert len(result.occurrences) == 2

    def test_induced_match(self):
        db = GraphDatabase.from_graphs([triangle(), path_graph(3)])
        pattern = path_graph(3)
        plain = match(pattern, db)
        induced = match(pattern, db, induced=True)
        assert plain.supporting_gids == {0, 1}
        assert induced.supporting_gids == {1}

    def test_no_match(self):
        db = GraphDatabase.from_graphs([triangle()])
        result = match(triangle(labels=(9, 9, 9)), db)
        assert result.support == 0
        assert result.occurrences == []


class TestMatchPatterns:
    def test_relocation_recomputes_supports(self):
        source = random_database(seed=1100, num_graphs=8, n=6)
        mined = GSpanMiner().mine(source, 3)
        target = random_database(seed=1101, num_graphs=10, n=6)
        relocated = match_patterns(mined, target)
        truth = GSpanMiner().mine(target, 1)
        for p in relocated:
            q = truth.get(p.key)
            expected = q.tids if q is not None else frozenset()
            assert p.tids == expected

    def test_min_support_filters(self):
        source = random_database(seed=1102, num_graphs=8, n=6)
        mined = GSpanMiner().mine(source, 2)
        filtered = match_patterns(mined, source, min_support=4)
        assert all(p.support >= 4 for p in filtered)
        assert filtered.keys() <= mined.keys()

    def test_same_database_roundtrip(self):
        db = random_database(seed=1103, num_graphs=8, n=6)
        mined = GSpanMiner().mine(db, 3)
        relocated = match_patterns(mined, db)
        for p in relocated:
            assert p.tids == mined.get(p.key).tids


class TestCoverage:
    def test_full_coverage(self):
        db = GraphDatabase.from_graphs([triangle(), triangle()])
        patterns = PatternSet(
            [Pattern.from_graph(LabeledGraph.single_edge(0, 0, 0), [0, 1])]
        )
        fraction, covered = coverage(patterns, db)
        assert fraction == 1.0
        assert covered == {0, 1}

    def test_partial_coverage(self):
        db = GraphDatabase.from_graphs(
            [triangle(), make_graph([7, 7], [(0, 1, 7)])]
        )
        patterns = PatternSet([Pattern.from_graph(triangle(), [0])])
        fraction, covered = coverage(patterns, db)
        assert fraction == 0.5
        assert covered == {0}

    def test_empty_inputs(self):
        assert coverage(PatternSet(), GraphDatabase()) == (0.0, set())
        db = GraphDatabase.from_graphs([triangle()])
        assert coverage(PatternSet(), db) == (0.0, set())

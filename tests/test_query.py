"""Tests for pattern queries (match / relocate / coverage)."""

from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import LabeledGraph
from repro.mining.base import Pattern, PatternSet
from repro.mining.gspan import GSpanMiner
from repro.query import coverage, match, match_patterns

from .conftest import make_graph, path_graph, random_database, triangle


class TestMatch:
    def test_edge_in_triangle_occurrences(self):
        db = GraphDatabase.from_graphs([triangle()])
        edge = LabeledGraph.single_edge(0, 0, 0)
        result = match(edge, db)
        assert result.support == 1
        assert len(result.occurrences) == 6  # 3 edges x 2 orientations
        assert result.per_graph() == {0: 6}

    def test_mappings_are_valid(self):
        db = GraphDatabase.from_graphs([triangle(), path_graph(4)])
        pattern = path_graph(3)
        result = match(pattern, db)
        for occurrence in result.occurrences:
            graph = db[occurrence.gid]
            phi = dict(occurrence.mapping)
            for u, v, label in pattern.edges():
                assert graph.has_edge(phi[u], phi[v])
                assert graph.edge_label(phi[u], phi[v]) == label

    def test_occurrence_cap_keeps_support_exact(self):
        db = GraphDatabase.from_graphs([triangle(), triangle()])
        edge = LabeledGraph.single_edge(0, 0, 0)
        result = match(edge, db, max_occurrences_per_graph=1)
        assert result.support == 2
        assert len(result.occurrences) == 2

    def test_induced_match(self):
        db = GraphDatabase.from_graphs([triangle(), path_graph(3)])
        pattern = path_graph(3)
        plain = match(pattern, db)
        induced = match(pattern, db, induced=True)
        assert plain.supporting_gids == {0, 1}
        assert induced.supporting_gids == {1}

    def test_no_match(self):
        db = GraphDatabase.from_graphs([triangle()])
        result = match(triangle(labels=(9, 9, 9)), db)
        assert result.support == 0
        assert result.occurrences == []


class TestMatchPatterns:
    def test_relocation_recomputes_supports(self):
        source = random_database(seed=1100, num_graphs=8, n=6)
        mined = GSpanMiner().mine(source, 3)
        target = random_database(seed=1101, num_graphs=10, n=6)
        relocated = match_patterns(mined, target)
        truth = GSpanMiner().mine(target, 1)
        for p in relocated:
            q = truth.get(p.key)
            expected = q.tids if q is not None else frozenset()
            assert p.tids == expected

    def test_min_support_filters(self):
        source = random_database(seed=1102, num_graphs=8, n=6)
        mined = GSpanMiner().mine(source, 2)
        filtered = match_patterns(mined, source, min_support=4)
        assert all(p.support >= 4 for p in filtered)
        assert filtered.keys() <= mined.keys()

    def test_same_database_roundtrip(self):
        db = random_database(seed=1103, num_graphs=8, n=6)
        mined = GSpanMiner().mine(db, 3)
        relocated = match_patterns(mined, db)
        for p in relocated:
            assert p.tids == mined.get(p.key).tids


class TestCoverage:
    def test_full_coverage(self):
        db = GraphDatabase.from_graphs([triangle(), triangle()])
        patterns = PatternSet(
            [Pattern.from_graph(LabeledGraph.single_edge(0, 0, 0), [0, 1])]
        )
        fraction, covered = coverage(patterns, db)
        assert fraction == 1.0
        assert covered == {0, 1}

    def test_partial_coverage(self):
        db = GraphDatabase.from_graphs(
            [triangle(), make_graph([7, 7], [(0, 1, 7)])]
        )
        patterns = PatternSet([Pattern.from_graph(triangle(), [0])])
        fraction, covered = coverage(patterns, db)
        assert fraction == 0.5
        assert covered == {0}

    def test_empty_inputs(self):
        assert coverage(PatternSet(), GraphDatabase()) == (0.0, set())
        db = GraphDatabase.from_graphs([triangle()])
        assert coverage(PatternSet(), db) == (0.0, set())


class TestQueryAcceleration:
    """match_patterns/coverage with and without the candidate filters."""

    def relocation_case(self, seed):
        source = random_database(seed=seed, num_graphs=8, n=6)
        target = random_database(seed=seed + 1, num_graphs=10, n=6)
        return GSpanMiner().mine(source, 3), target

    def test_match_patterns_accel_identical(self):
        for induced in (False, True):
            mined, target = self.relocation_case(1200)
            fast = match_patterns(mined, target, induced=induced)
            slow = match_patterns(
                mined, target, induced=induced, use_accel=False
            )
            assert fast.keys() == slow.keys()
            for p in fast:
                assert p.tids == slow.get(p.key).tids

    def test_min_support_identical_under_accel(self):
        mined, target = self.relocation_case(1210)
        fast = match_patterns(mined, target, min_support=3)
        slow = match_patterns(
            mined, target, min_support=3, use_accel=False
        )
        assert fast.keys() == slow.keys()

    def test_coverage_accel_identical(self):
        for induced in (False, True):
            mined, target = self.relocation_case(1220)
            assert coverage(mined, target, induced=induced) == coverage(
                mined, target, induced=induced, use_accel=False
            )

    def test_accel_avoids_searches(self, monkeypatch):
        import repro.query as query_mod

        mined, target = self.relocation_case(1230)
        real = query_mod.find_embeddings
        calls = {"n": 0}

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(query_mod, "find_embeddings", counting)

        def searches(**kwargs):
            calls["n"] = 0
            match_patterns(mined, target, **kwargs)
            return calls["n"]

        assert searches(use_accel=True) < searches(use_accel=False)

    def test_global_switch_disables_filtering(self, monkeypatch):
        import repro.query as query_mod
        from repro import perf

        mined, target = self.relocation_case(1240)
        real = query_mod.find_embeddings
        calls = {"n": 0}

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(query_mod, "find_embeddings", counting)
        with perf.disabled():
            gated = match_patterns(mined, target)
            gated_calls, calls["n"] = calls["n"], 0
            plain = match_patterns(mined, target, use_accel=False)
            plain_calls = calls["n"]
        assert gated.keys() == plain.keys()
        assert gated_calls == plain_calls  # accel request was a no-op

    def test_vertex_only_pattern_matches_everywhere(self):
        target = random_database(seed=1250, num_graphs=5, n=5)
        dot = make_graph([0], [])
        # Edge-free graphs have no canonical DFS code; key by hand.
        patterns = PatternSet(
            [Pattern(graph=dot, key=("v", 0), support=1, tids=frozenset([0]))]
        )
        fast = match_patterns(patterns, target)
        slow = match_patterns(patterns, target, use_accel=False)
        assert fast.keys() == slow.keys()
        for p in fast:
            assert p.tids == slow.get(p.key).tids

"""End-to-end recovery tests: corruption is detected, never served.

Covers the failure drills in DESIGN.md §10:

* a crash between snapshot write and manifest rename leaves the previous
  catalog version published and loadable;
* a corrupt current snapshot falls back to the newest older good version
  (and repairs the manifest);
* a corrupt unit checkpoint is quarantined and the unit re-mined, with
  byte-identical final patterns.
"""

import io as _stdio
import json

import pytest

from repro.core.partminer import resolve_unit_threshold
from repro.mining.gspan import GSpanMiner
from repro.mining.store import dump_patterns, read_patterns
from repro.partition.dbpartition import db_partition
from repro.resilience.errors import ArtifactCorrupt
from repro.resilience.faults import FaultPlan
from repro.runtime import (
    CheckpointStore,
    RuntimeConfig,
    run_unit_mining,
)
from repro.serve.catalog import PatternCatalog

from .conftest import random_database


def mined(seed=2200, support=4):
    db = random_database(seed=seed, num_graphs=8, n=6)
    return db, GSpanMiner().mine(db, support)


def pattern_text(patterns):
    buffer = _stdio.StringIO()
    dump_patterns(patterns, buffer)
    return buffer.getvalue()


def flip_byte(path, needle=b"patterns"):
    """Corrupt ``path`` in place without touching its footer line."""
    raw = path.read_bytes()
    position = max(raw.find(needle), 1)
    mutated = bytearray(raw)
    mutated[position] ^= 0x04
    path.write_bytes(bytes(mutated))


class TestCrashMidPublish:
    def test_crash_before_manifest_rename_keeps_old_version(self, tmp_path):
        db, patterns = mined()
        catalog = PatternCatalog(tmp_path / "catalog")
        catalog.publish(patterns, database=db)
        v1_text = pattern_text(catalog.load().patterns)

        # Second publish dies at its first durable write (the snapshot's
        # patterns.jsonl) — nothing of the new version becomes visible.
        more = GSpanMiner().mine(db, 3)
        plan = FaultPlan()
        plan.inject("artifact.write", OSError("power loss"), times=1)
        with plan.active():
            with pytest.raises(OSError, match="power loss"):
                catalog.publish(more, database=db)

        # The interrupted publish never swapped the manifest: readers
        # still see version 1 with its exact pattern bytes.
        assert catalog.current_version() == 1
        recovered = catalog.load()
        assert recovered.version == 1
        assert pattern_text(recovered.patterns) == v1_text

        # Retrying the publish after the crash succeeds and advances.
        snapshot = catalog.publish(more, database=db)
        assert snapshot.version == 2
        assert catalog.load().version == 2

    def test_crash_between_snapshot_and_manifest(self, tmp_path):
        """Kill specifically between snapshot write and manifest rename."""
        db, patterns = mined()
        catalog = PatternCatalog(tmp_path / "catalog")
        catalog.publish(patterns, database=db)
        v1_text = pattern_text(catalog.load().patterns)

        more = GSpanMiner().mine(db, 3)
        # The manifest is the third artifact write of a publish
        # (patterns.jsonl, index.json, manifest.json): let two through.
        plan = FaultPlan()
        plan.inject("artifact.write", OSError("yanked cord"), times=3)
        with plan.active():
            # consume two arms on a scratch file so only the manifest
            # write of the publish still has a live arm
            from repro.resilience import integrity

            for scratch in ("a", "b"):
                with pytest.raises(OSError):
                    integrity.atomic_write_text(tmp_path / scratch, "x")
            with pytest.raises(OSError, match="yanked cord"):
                catalog.publish(more, database=db)

        # Snapshot directory 2 exists on disk, but the manifest still
        # points at version 1 — the torn publish is invisible.
        assert (tmp_path / "catalog" / "snapshot-000002").is_dir()
        assert catalog.current_version() == 1
        assert pattern_text(catalog.load().patterns) == v1_text


class TestSnapshotFallback:
    def test_corrupt_current_falls_back_to_previous(self, tmp_path):
        db, patterns = mined()
        catalog = PatternCatalog(tmp_path / "catalog")
        catalog.publish(patterns, database=db)
        v1_text = pattern_text(catalog.load().patterns)
        catalog.publish(GSpanMiner().mine(db, 3), database=db)

        flip_byte(tmp_path / "catalog" / "snapshot-000002" / "patterns.jsonl")

        snapshot = catalog.load()
        assert snapshot.version == 1
        assert pattern_text(snapshot.patterns) == v1_text
        # The bad artifact was quarantined, not left to be re-read.
        assert (
            tmp_path / "catalog" / "snapshot-000002"
            / "patterns.jsonl.corrupt"
        ).is_dir()
        # The manifest was repaired to the served version.
        manifest = json.loads(
            (tmp_path / "catalog" / "manifest.json").read_text()
        )
        assert manifest["version"] == 1
        assert manifest["recovered_from"] == 2

    def test_corrupt_index_falls_back_too(self, tmp_path):
        db, patterns = mined()
        catalog = PatternCatalog(tmp_path / "catalog")
        catalog.publish(patterns, database=db)
        catalog.publish(GSpanMiner().mine(db, 3), database=db)
        flip_byte(
            tmp_path / "catalog" / "snapshot-000002" / "index.json",
            needle=b"fragments",
        )
        assert catalog.load().version == 1

    def test_no_good_version_raises_typed_error(self, tmp_path):
        db, patterns = mined()
        catalog = PatternCatalog(tmp_path / "catalog")
        catalog.publish(patterns, database=db)
        flip_byte(tmp_path / "catalog" / "snapshot-000001" / "patterns.jsonl")
        with pytest.raises(ArtifactCorrupt):
            catalog.load()

    def test_fallback_disabled_raises_immediately(self, tmp_path):
        db, patterns = mined()
        catalog = PatternCatalog(tmp_path / "catalog")
        catalog.publish(patterns, database=db)
        catalog.publish(GSpanMiner().mine(db, 3), database=db)
        flip_byte(tmp_path / "catalog" / "snapshot-000002" / "patterns.jsonl")
        with pytest.raises(ArtifactCorrupt):
            catalog.load(fallback=False)


class TestCorruptCheckpointResume:
    def _workload(self):
        db = random_database(seed=911, num_graphs=10, n=6, extra_edges=1)
        tree = db_partition(db, 3)
        units = tree.units()
        thresholds = [
            resolve_unit_threshold(u, 3, "exact") for u in units
        ]
        return units, thresholds

    def test_corrupt_unit_checkpoint_is_remined(self, tmp_path):
        units, thresholds = self._workload()
        reference = run_unit_mining(units, thresholds)

        store = CheckpointStore(tmp_path / "run")
        store.open({"units": len(units), "thresholds": thresholds})
        run_unit_mining(
            units,
            thresholds,
            config=RuntimeConfig(max_workers=1),
            checkpoint=store,
        )
        flip_byte(store.unit_path(1), needle=b"support")

        resumed = run_unit_mining(
            units,
            thresholds,
            config=RuntimeConfig(max_workers=1),
            checkpoint=store,
        )
        # Units 0 and 2 resumed from checkpoints; unit 1 was detected
        # corrupt, quarantined, and re-mined from scratch.
        statuses = {r.unit: r.status for r in resumed.telemetry.units}
        assert statuses[0] == "checkpoint"
        assert statuses[2] == "checkpoint"
        assert statuses[1] == "ok"
        outcomes = [
            a.outcome for a in resumed.telemetry.units[1].attempts
        ]
        assert outcomes[0] == "checkpoint-corrupt"
        assert outcomes[-1] == "ok"
        quarantine = store.unit_path(1).with_name(
            store.unit_path(1).name + ".corrupt"
        )
        assert quarantine.is_dir()

        # Recovery is exact: every unit's patterns match the reference.
        for got, want in zip(
            resumed.unit_results, reference.unit_results
        ):
            assert got.keys() == want.keys()
            for p in got:
                assert p.tids == want.get(p.key).tids

        # The re-mined checkpoint on disk is valid again.
        patterns, _ = read_patterns(store.unit_path(1))
        assert patterns.keys() == reference.unit_results[1].keys()

    def test_truncated_checkpoint_is_remined(self, tmp_path):
        units, thresholds = self._workload()
        store = CheckpointStore(tmp_path / "run")
        store.open({"units": len(units), "thresholds": thresholds})
        baseline = run_unit_mining(
            units, thresholds, config=RuntimeConfig(max_workers=1),
            checkpoint=store,
        )
        path = store.unit_path(0)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        resumed = run_unit_mining(
            units, thresholds, config=RuntimeConfig(max_workers=1),
            checkpoint=store,
        )
        assert resumed.unit_results[0].keys() == (
            baseline.unit_results[0].keys()
        )

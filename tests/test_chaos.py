"""Chaos suite: every registered fault site, injected, must end well.

"Well" means exactly one of:

* **recovered** — the pipeline absorbs the fault (retry, fallback,
  re-mine, old snapshot) and its observable result is identical to the
  fault-free baseline;
* **typed failure** — a documented exception type propagates (mapping to
  a nonzero CLI exit code via
  :func:`repro.resilience.errors.exit_code_for`), or an HTTP error
  status with an ``error`` body is returned.

What is *never* acceptable is silent divergence: a completed run whose
output differs from the baseline.  Every scenario asserts that
explicitly.

The seed is taken from ``REPRO_CHAOS_SEED`` (CI runs a small matrix);
the same seed replays the same corruption positions.
"""

import io
import json
import os
import urllib.error
import urllib.request

import pytest

from repro.graph import io as graph_io
from repro.graph.io import GraphParseError
from repro.mining.gspan import GSpanMiner
from repro.mining.store import dump_patterns, read_patterns, save_patterns
from repro.partition.dbpartition import db_partition
from repro.core.partminer import PartMiner, resolve_unit_threshold
from repro.obs import EventSink, Tracer, load_events
from repro.obs import trace as obs_trace
from repro.resilience import faults
from repro.resilience.errors import (
    ArtifactCorrupt,
    ResilienceError,
    exit_code_for,
)
from repro.resilience.faults import FaultPlan, InjectedFault
from repro.runtime import RuntimeConfig, run_unit_mining
from repro.runtime.engine import UnitMiningError
from repro.serve.catalog import PatternCatalog
from repro.serve.service import PatternService
from repro.updates.generator import UpdateGenerator
from repro.updates.journal import UpdateJournal, replay
from repro.updates.tracker import hot_vertex_assignment

from .conftest import random_database

SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))

#: Exceptions the chaos contract accepts as a "typed failure": the
#: injected fault itself, any resilience-layer classification of it,
#: strict-parse errors, OS-level faults we injected, and the runtime's
#: all-retries-exhausted error.
TYPED_FAILURES = (
    InjectedFault,
    ResilienceError,
    GraphParseError,
    OSError,
    UnitMiningError,
)


def pattern_text(patterns):
    buffer = io.StringIO()
    dump_patterns(patterns, buffer)
    return buffer.getvalue()


def http_text(url, timeout=10):
    try:
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.status, response.read().decode()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read().decode()


def http_json(url, payload=None, timeout=10):
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
        method="GET" if payload is None else "POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


# ----------------------------------------------------------------------
# Scenarios: one per fault site.  Each returns None (all assertions are
# internal) and must hold for exc-injection; byte sites also run the
# flip/truncate corruptions.
# ----------------------------------------------------------------------
def scenario_artifact_write(tmp_path, plan):
    db = random_database(seed=3100 + SEED, num_graphs=6, n=5)
    patterns = GSpanMiner().mine(db, 3)
    baseline = pattern_text(patterns)
    path = tmp_path / "patterns.jsonl"

    failed = False
    with plan.active():
        try:
            save_patterns(patterns, path, atomic=True)
        except TYPED_FAILURES:
            failed = True
    if failed:
        # Crashed write: the path holds nothing (or old bytes) — never
        # a torn file that parses into different patterns.
        assert not path.exists()
    else:
        # The write "succeeded" but the plan may have corrupted the
        # bytes in flight: the read side must either return exactly the
        # original patterns or detect the damage.
        try:
            loaded, _ = read_patterns(path)
        except ArtifactCorrupt as exc:
            assert exit_code_for(exc) == 3
        else:
            assert pattern_text(loaded) == baseline
    # Recovery: a clean rewrite always round-trips.
    save_patterns(patterns, path, atomic=True)
    loaded, _ = read_patterns(path)
    assert pattern_text(loaded) == baseline


def scenario_artifact_read(tmp_path, plan):
    db = random_database(seed=3200 + SEED, num_graphs=6, n=5)
    patterns = GSpanMiner().mine(db, 3)
    baseline = pattern_text(patterns)
    path = tmp_path / "patterns.jsonl"
    save_patterns(patterns, path, atomic=True)

    with plan.active():
        try:
            loaded, _ = read_patterns(path)
        except ArtifactCorrupt as exc:
            assert exit_code_for(exc) == 3
        except TYPED_FAILURES:
            pass
        else:
            assert pattern_text(loaded) == baseline
    # Recovery: rewrite (the detected-corrupt path was quarantined) and
    # re-read clean.
    save_patterns(patterns, path, atomic=True)
    loaded, _ = read_patterns(path)
    assert pattern_text(loaded) == baseline


def scenario_graph_parse(tmp_path, plan):
    db = random_database(seed=3300 + SEED, num_graphs=5, n=5)
    path = tmp_path / "db.tve"
    graph_io.write_database(db, path)
    baseline = graph_io.dumps(graph_io.read_database(path))

    with plan.active():
        try:
            loaded = graph_io.read_database(path)
        except TYPED_FAILURES as exc:
            assert exit_code_for(exc) != 0
        else:
            assert graph_io.dumps(loaded) == baseline
    assert graph_io.dumps(graph_io.read_database(path)) == baseline


def scenario_runtime_worker_start(tmp_path, plan):
    db = random_database(seed=3400 + SEED, num_graphs=8, n=5, extra_edges=1)
    units = db_partition(db, 2).units()
    thresholds = [resolve_unit_threshold(u, 3, "exact") for u in units]
    baseline = run_unit_mining(units, thresholds)

    with plan.active():
        try:
            result = run_unit_mining(
                units, thresholds, config=RuntimeConfig(max_workers=1)
            )
        except TYPED_FAILURES:
            return  # fail-fast is acceptable; divergence is not
    # A transient worker fault retries (or falls back) into the exact
    # baseline patterns.
    for got, want in zip(result.unit_results, baseline.unit_results):
        assert pattern_text(got) == pattern_text(want)


def scenario_runtime_fallback(tmp_path, plan):
    # Force every worker attempt to die so the serial fallback is what
    # the armed fault hits.
    plan.inject("runtime.worker_start", OSError("worker lost"), times=100)
    db = random_database(seed=3500 + SEED, num_graphs=8, n=5, extra_edges=1)
    units = db_partition(db, 2).units()
    thresholds = [resolve_unit_threshold(u, 3, "exact") for u in units]
    baseline = run_unit_mining(units, thresholds)

    with plan.active():
        try:
            result = run_unit_mining(
                units,
                thresholds,
                config=RuntimeConfig(max_workers=1, max_retries=0),
            )
        except TYPED_FAILURES:
            return
    for got, want in zip(result.unit_results, baseline.unit_results):
        assert pattern_text(got) == pattern_text(want)


def scenario_perf_shm_attach(tmp_path, plan):
    from repro.perf import flatgraph

    db = random_database(seed=4100 + SEED, num_graphs=8, n=5, extra_edges=1)
    units = db_partition(db, 2).units()
    thresholds = [resolve_unit_threshold(u, 3, "exact") for u in units]
    baseline = run_unit_mining(units, thresholds)

    with plan.active():
        try:
            result = run_unit_mining(
                units, thresholds, config=RuntimeConfig(max_workers=1)
            )
        except TYPED_FAILURES:
            result = None
    # However the attach failed — raised, or bytes corrupted and caught
    # by the segment digest — the affected unit reverts to pickled
    # payloads and the mined patterns are exactly the baseline's.
    if result is not None:
        for got, want in zip(result.unit_results, baseline.unit_results):
            assert pattern_text(got) == pattern_text(want)
    # Published segments are destroyed no matter what happened.
    assert flatgraph.live_segments() == []


def scenario_journal_replay(tmp_path, plan):
    db = random_database(seed=3600 + SEED, num_graphs=6, n=5)
    ufreq = hot_vertex_assignment(db, hot_fraction=0.3, seed=SEED)
    generator = UpdateGenerator(
        num_vertex_labels=4, num_edge_labels=3, seed=SEED
    )
    journal = UpdateJournal()
    journal.append(generator.generate(db, ufreq, 0.5, 1, "relabel"))

    def fresh_db():
        return random_database(seed=3600 + SEED, num_graphs=6, n=5)

    reference = fresh_db()
    replay(journal, reference)
    baseline = graph_io.dumps(reference)

    target = fresh_db()
    with plan.active():
        try:
            replay(journal, target)
        except TYPED_FAILURES:
            # Recovery: replay the journal against a fresh copy.
            target = fresh_db()
            replay(journal, target)
    assert graph_io.dumps(target) == baseline


def scenario_cli_run(tmp_path, plan):
    from repro.cli import main

    db = random_database(seed=3700 + SEED, num_graphs=4, n=4)
    path = tmp_path / "db.tve"
    graph_io.write_database(db, path)

    with plan.active():
        try:
            code = main(["stats", str(path)])
        except TYPED_FAILURES:
            return
    assert code == 0


def scenario_serve_request(tmp_path, plan):
    catalog, db = _published(tmp_path)
    with PatternService(catalog, db) as service:
        url = service.base_url + "/healthz"
        status, baseline = http_json(url)
        assert status == 200
        with plan.active():
            status, body = http_json(url)
            assert status == 200 or "error" in body
        # The fault is spent: the service answers correctly again.
        status, body = http_json(url)
        assert status == 200
        assert body["status"] == baseline["status"] == "ok"


def scenario_serve_reload(tmp_path, plan):
    catalog, db = _published(tmp_path)
    with PatternService(catalog, db) as service:
        patterns_url = service.base_url + "/patterns"
        _, baseline = http_json(patterns_url)
        with plan.active():
            status, body = http_json(service.base_url + "/reload", {})
            assert status == 200 or "error" in body
        # Whatever the reload fault did, served answers are unchanged
        # and exactly the published snapshot.
        _, after = http_json(patterns_url)
        assert after == baseline


def scenario_obs_sink_write(tmp_path, plan):
    db = random_database(seed=3900 + SEED, num_graphs=8, n=5, extra_edges=1)
    baseline = pattern_text(PartMiner(k=2).mine(db, 3).patterns)

    path = tmp_path / "trace.jsonl"
    sink = EventSink(path, batch=1)  # batch=1: every span is a write
    tracer = Tracer(on_record=sink.emit)
    with plan.active():
        # The flusher appends while the plan is armed; whatever happens
        # to the trace file, the mining call must not notice.
        with obs_trace.tracing(tracer):
            result = PartMiner(k=2).mine(db, 3)
        stats = sink.close()
    assert pattern_text(result.patterns) == baseline
    if stats["broken"] is not None:
        # Write failure: the sink latched broken and dropped the rest —
        # it never re-raised into the miner.
        assert stats["dropped_events"] > 0
    else:
        # The write "succeeded" but bytes may be mangled in flight: the
        # strict reader returns real spans or detects the damage.
        try:
            events = load_events(path, require=True)
        except ArtifactCorrupt as exc:
            assert exit_code_for(exc) == 3
        else:
            assert any(e.get("event") == "span" for e in events)


def scenario_obs_metrics_scrape(tmp_path, plan):
    catalog, db = _published(tmp_path)
    with PatternService(catalog, db) as service:
        metrics_url = service.base_url + "/metrics"
        status, page = http_text(metrics_url)
        assert status == 200 and "repro_serve_patterns" in page
        _, patterns_baseline = http_json(service.base_url + "/patterns")
        with plan.active():
            status, page = http_text(metrics_url)
            assert status == 200 or "error" in page
        # The fault is spent: scrapes answer again and served data is
        # exactly what it was before.
        status, page = http_text(metrics_url)
        assert status == 200 and "repro_serve_patterns" in page
        _, after = http_json(service.base_url + "/patterns")
        assert after == patterns_baseline


def scenario_storage_write(tmp_path, plan):
    from repro.storage import open_backend

    db = random_database(seed=4200 + SEED, num_graphs=6, n=5)
    baseline = graph_io.dumps(db)
    backend = open_backend("sqlite", tmp_path / "graphs.db")
    try:
        failed = False
        with plan.active():
            try:
                backend.import_database(db)
            except TYPED_FAILURES:
                # The import transaction rolled back whole — the file
                # holds either nothing or intact rows, never torn state.
                failed = True
        if not failed:
            # The write "succeeded" but the bytes may have been mangled
            # in flight: each row's sha256 was computed before the fault
            # site, so the read side either returns the exact database
            # or detects the damage and quarantines the row.
            try:
                assert graph_io.dumps(backend.database()) == baseline
            except ArtifactCorrupt as exc:
                assert exit_code_for(exc) == 3
                assert exc.quarantined.exists()
        # Recovery: corrupt rows were deleted at quarantine time, so a
        # clean re-import heals and reads back identical.
        backend.import_database(db)
        assert graph_io.dumps(backend.database()) == baseline
    finally:
        backend.close()


def scenario_storage_read(tmp_path, plan):
    from repro.storage import open_backend

    db = random_database(seed=4300 + SEED, num_graphs=6, n=5)
    baseline = graph_io.dumps(db)
    backend = open_backend("sqlite", tmp_path / "graphs.db")
    try:
        backend.import_database(db)
        with plan.active():
            try:
                assert graph_io.dumps(backend.database()) == baseline
            except ArtifactCorrupt as exc:
                assert exit_code_for(exc) == 3
                assert exc.quarantined.exists()
            except TYPED_FAILURES:
                pass
        # Recovery: the bad row (if any) was quarantined and deleted;
        # re-importing restores it and a clean read is the baseline.
        backend.import_database(db)
        assert graph_io.dumps(backend.database()) == baseline
    finally:
        backend.close()


def _coord_run(tmp_path, db, support=3):
    from repro.coord import CoordConfig, Coordinator

    config = CoordConfig(
        shards=2,
        workers=2,
        chunk_size=2,
        heartbeat_interval=0.05,
        runtime=RuntimeConfig(
            backoff_base=0.001, backoff_max=0.01, kill_grace=2.0
        ),
    )
    return Coordinator(config, run_dir=tmp_path / "coord-run").mine(
        db, support
    )


def scenario_coord_lease(tmp_path, plan):
    # A failed lease grant burns one attempt; the retry re-grants and
    # the sharded output is exactly the single-process baseline.
    db = random_database(seed=4400 + SEED, num_graphs=8, n=5, extra_edges=1)
    baseline = pattern_text(GSpanMiner().mine(db, 3))
    with plan.active():
        try:
            result = _coord_run(tmp_path, db)
        except TYPED_FAILURES:
            return  # budget exhausted without fallback — typed, not silent
    assert pattern_text(result.patterns) == baseline


def scenario_coord_heartbeat(tmp_path, plan):
    # A lost heartbeat never changes the mined output: the lease TTL
    # tolerates one gap, and if injection storms every beat the lease
    # expires and the shard is re-assigned to a fresh worker — either
    # way the final set is the baseline.
    db = random_database(seed=4500 + SEED, num_graphs=8, n=5, extra_edges=1)
    baseline = pattern_text(GSpanMiner().mine(db, 3))
    with plan.active():
        try:
            result = _coord_run(tmp_path, db)
        except TYPED_FAILURES:
            return
    assert pattern_text(result.patterns) == baseline
    counters = result.telemetry.coord["counters"]
    assert counters["lease_expiries"] == counters["reassignments"]


def scenario_coord_shard_result(tmp_path, plan):
    # Corrupting a committed shard-result artifact is detected by the
    # sha256 footer, the artifact is quarantined, and the shard re-mines
    # from its chunk checkpoints — the output never silently diverges.
    db = random_database(seed=4600 + SEED, num_graphs=8, n=5, extra_edges=1)
    baseline = pattern_text(GSpanMiner().mine(db, 3))
    with plan.active():
        try:
            result = _coord_run(tmp_path, db)
        except TYPED_FAILURES:
            return
    assert pattern_text(result.patterns) == baseline


def _published(tmp_path):
    db = random_database(seed=3800 + SEED, num_graphs=6, n=5)
    patterns = GSpanMiner().mine(db, 3)
    catalog = PatternCatalog(tmp_path / "catalog")
    catalog.publish(patterns, database=db)
    return catalog, db


SCENARIOS = {
    "artifact.write": scenario_artifact_write,
    "artifact.read": scenario_artifact_read,
    "graph.parse": scenario_graph_parse,
    "runtime.worker_start": scenario_runtime_worker_start,
    "runtime.fallback": scenario_runtime_fallback,
    "perf.shm_attach": scenario_perf_shm_attach,
    "journal.replay": scenario_journal_replay,
    "cli.run": scenario_cli_run,
    "serve.request": scenario_serve_request,
    "serve.reload": scenario_serve_reload,
    "obs.sink_write": scenario_obs_sink_write,
    "obs.metrics_scrape": scenario_obs_metrics_scrape,
    "storage.write": scenario_storage_write,
    "storage.read": scenario_storage_read,
    "coord.lease": scenario_coord_lease,
    "coord.heartbeat": scenario_coord_heartbeat,
    "coord.shard_result": scenario_coord_shard_result,
}

#: Sites whose hook passes bytes through ``mangle`` — they additionally
#: run the corruption arms, not just the exception arm.
BYTE_SITES = {
    "artifact.write",
    "artifact.read",
    "obs.sink_write",
    "perf.shm_attach",
    "storage.write",
    "storage.read",
    "coord.shard_result",
}


def test_every_registered_site_has_a_scenario():
    """The acceptance gate: full site-registry coverage, enforced."""
    assert set(SCENARIOS) == set(faults.registered_sites())


@pytest.mark.parametrize("site", sorted(SCENARIOS))
def test_injected_exception(site, tmp_path):
    plan = FaultPlan(seed=SEED)
    plan.inject(site, times=1)
    SCENARIOS[site](tmp_path, plan)
    assert any(f.site == site for f in plan.fired), (
        f"scenario for {site} never reached its fault site"
    )


@pytest.mark.parametrize("corruption", ["flip", "truncate"])
@pytest.mark.parametrize("site", sorted(BYTE_SITES))
def test_injected_corruption(site, corruption, tmp_path):
    plan = FaultPlan(seed=SEED)
    plan.inject(site, corrupt=corruption, times=1)
    SCENARIOS[site](tmp_path, plan)
    assert any(
        f.site == site and f.kind == "corrupt" for f in plan.fired
    )


def test_injected_os_errors(tmp_path):
    """Same drill with a realistic I/O exception instead of the default."""
    for site in ("artifact.write", "artifact.read"):
        plan = FaultPlan(seed=SEED)
        plan.inject(site, OSError(5, "Input/output error"), times=1)
        SCENARIOS[site](tmp_path, plan)
        assert plan.fired

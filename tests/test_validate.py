"""Tests for the result-validation module."""

import pytest

from repro.mining.base import Pattern, PatternSet
from repro.mining.gspan import GSpanMiner
from repro.mining.validate import (
    check_against_reference,
    check_downward_closure,
    check_supports,
    validate,
)

from .conftest import path_graph, random_database, triangle


class TestCheckSupports:
    def test_correct_result_passes(self, medium_db):
        patterns = GSpanMiner().mine(medium_db, 3)
        report = check_supports(patterns, medium_db)
        assert report.ok
        assert report.patterns_checked == len(patterns)

    def test_wrong_support_detected(self, medium_db):
        patterns = GSpanMiner().mine(medium_db, 3)
        victim = next(iter(patterns))
        forged = PatternSet(
            p for p in patterns if p.key != victim.key
        )
        forged.add(
            Pattern(
                graph=victim.graph,
                key=victim.key,
                support=victim.support + 5,
                tids=victim.tids | {991, 992, 993, 994, 995},
            )
        )
        report = check_supports(forged, medium_db)
        assert not report.ok
        assert len(report.support_errors) == 1


class TestDownwardClosure:
    def test_complete_set_is_closed(self, medium_db):
        patterns = GSpanMiner().mine(medium_db, 3)
        assert check_downward_closure(patterns).ok

    def test_hole_detected(self, medium_db):
        patterns = GSpanMiner().mine(medium_db, 3)
        # Remove a small pattern that larger ones depend on.
        edge_patterns = patterns.of_size(1)
        bigger = patterns.of_size(2)
        if not bigger:
            pytest.skip("no size-2 patterns at this threshold")
        holed = PatternSet(p for p in patterns if p.size != 1)
        report = check_downward_closure(holed)
        assert not report.ok
        assert report.closure_errors


class TestAgainstReference:
    def test_exact_result_clean(self, medium_db):
        patterns = GSpanMiner().mine(medium_db, 3)
        report = check_against_reference(patterns, medium_db, 3)
        assert report.missing_patterns == 0
        assert report.spurious_patterns == 0

    def test_missing_counted(self, medium_db):
        patterns = GSpanMiner().mine(medium_db, 3)
        victim = max(patterns, key=lambda p: p.size)
        partial = PatternSet(p for p in patterns if p.key != victim.key)
        report = check_against_reference(partial, medium_db, 3)
        assert report.missing_patterns == 1


class TestValidatePipeline:
    def test_full_validation_of_partminer(self, medium_db):
        from repro.core.partminer import PartMiner

        result = PartMiner(k=2, unit_support="exact").mine(medium_db, 3)
        report = validate(
            result.patterns, medium_db, min_support=3, full=True
        )
        assert report.ok, report.summary()
        assert "OK" in report.summary()

    def test_full_requires_support(self, medium_db):
        patterns = GSpanMiner().mine(medium_db, 3)
        with pytest.raises(ValueError, match="min_support"):
            validate(patterns, medium_db, full=True)

    def test_summary_mentions_failures(self, medium_db):
        patterns = PatternSet(
            [Pattern.from_graph(triangle(labels=(91, 92, 93)), [0])]
        )
        report = validate(patterns, medium_db)
        assert not report.ok
        assert "FAILED" in report.summary()

"""Tests for weights, GraphPart, and the METIS-like partitioner."""

import random

from repro.partition.graphpart import (
    GraphPartitioner,
    build_bipartition,
    dfs_scan,
)
from repro.partition.metis import MetisPartitioner
from repro.partition.weights import (
    PARTITION1,
    PARTITION2,
    PARTITION3,
    PartitionWeights,
    cut_edges,
)

from .conftest import make_graph, path_graph, random_graph, triangle


class TestWeights:
    def test_cut_edges(self):
        g = path_graph(4)
        assert cut_edges(g, {0, 1}) == [(1, 2)]
        assert cut_edges(g, {0, 2}) == [(0, 1), (1, 2), (2, 3)]

    def test_evaluate_partition1_ignores_cut(self):
        g = path_graph(4)
        ufreq = [1.0, 1.0, 0.0, 0.0]
        w_good = PARTITION1.evaluate(g, {0, 1}, ufreq)
        w_bad = PARTITION1.evaluate(g, {2, 3}, ufreq)
        assert w_good == 1.0
        assert w_bad == 0.0

    def test_evaluate_partition2_penalizes_cut(self):
        g = path_graph(4)
        ufreq = [0.0] * 4
        assert PARTITION2.evaluate(g, {0, 1}, ufreq) == -1.0
        assert PARTITION2.evaluate(g, {0, 2}, ufreq) == -3.0

    def test_partition3_combines(self):
        g = path_graph(4)
        ufreq = [1.0, 1.0, 0.0, 0.0]
        assert PARTITION3.evaluate(g, {0, 1}, ufreq) == 0.0  # 1.0 - 1 cut

    def test_empty_subset_is_minus_inf(self):
        assert PartitionWeights().evaluate(
            path_graph(2), set(), [0, 0]
        ) == float("-inf")


class TestDFSScan:
    def test_respects_limit(self):
        g = path_graph(6)
        subset = dfs_scan(g, 0, 3, [0.0] * 6)
        assert len(subset) == 3
        assert subset == {0, 1, 2}

    def test_follows_high_ufreq_neighbor(self):
        g = make_graph([0] * 4, [(0, 1, 0), (0, 2, 0), (1, 3, 0), (2, 3, 0)])
        ufreq = [0.0, 0.1, 0.9, 0.0]
        subset = dfs_scan(g, 0, 2, ufreq)
        assert subset == {0, 2}  # prefers the hot neighbor

    def test_backtracks_when_stuck(self):
        # Star: the walk reaches a leaf and must backtrack to the center.
        g = make_graph([0] * 4, [(0, 1, 0), (0, 2, 0), (0, 3, 0)])
        subset = dfs_scan(g, 1, 3, [0.0] * 4)
        assert len(subset) == 3


class TestBuildBipartition:
    def test_connective_edges_in_both_sides(self):
        g = path_graph(4)
        bipart = build_bipartition(g, {0, 1}, [0.0] * 4)
        assert bipart.connective_edges == ((1, 2),)
        # Side 0: edge (0,1) + cut (1,2); side 1: (2,3) + cut (1,2).
        assert bipart.side0.graph.num_edges == 2
        assert bipart.side1.graph.num_edges == 2

    def test_edge_union_recovers_graph(self):
        rng = random.Random(10)
        for _ in range(20):
            g = random_graph(rng, rng.randrange(4, 9), 3)
            subset = set(
                rng.sample(range(g.num_vertices), g.num_vertices // 2)
            )
            bipart = build_bipartition(g, subset, [0.0] * g.num_vertices)
            recovered = set()
            for side in (bipart.side0, bipart.side1):
                for u, v, label in side.graph.edges():
                    ou, ov = side.to_original(u), side.to_original(v)
                    recovered.add((min(ou, ov), max(ou, ov), label))
            original = {
                (min(u, v), max(u, v), label) for u, v, label in g.edges()
            }
            assert recovered == original

    def test_labels_preserved(self):
        g = triangle(labels=(7, 8, 9))
        bipart = build_bipartition(g, {0}, [0.0] * 3)
        side = bipart.side0
        for v in side.graph.vertices():
            assert side.graph.vertex_label(v) == g.vertex_label(
                side.to_original(v)
            )

    def test_cores_are_disjoint_and_cover(self):
        g = path_graph(5)
        bipart = build_bipartition(g, {0, 1}, [0.0] * 5)
        assert bipart.core0 & bipart.core1 == frozenset()
        assert bipart.core0 | bipart.core1 == set(range(5))

    def test_ufreq_propagated(self):
        g = path_graph(3)
        bipart = build_bipartition(g, {0}, [0.5, 0.2, 0.9])
        side = bipart.side0
        for v in side.graph.vertices():
            assert side.ufreq[v] == [0.5, 0.2, 0.9][side.to_original(v)]


class TestGraphPartitioner:
    def test_trivial_graphs_go_to_side0(self):
        single = make_graph([0], [])
        bipart = GraphPartitioner()(single, [0.0])
        assert bipart.side0.graph.num_vertices == 1
        assert bipart.side1.graph.num_vertices == 0

    def test_both_sides_nonempty_for_real_graphs(self):
        rng = random.Random(20)
        partitioner = GraphPartitioner()
        for _ in range(20):
            g = random_graph(rng, rng.randrange(4, 10), 2)
            bipart = partitioner(g, [0.0] * g.num_vertices)
            assert bipart.core0 and bipart.core1

    def test_partition1_isolates_hot_vertices(self):
        # A path with hot vertices at one end: Partition1 groups them.
        g = path_graph(6)
        ufreq = [1.0, 1.0, 1.0, 0.0, 0.0, 0.0]
        bipart = GraphPartitioner(PARTITION1)(g, ufreq)
        hot_side = (
            bipart.core0 if 0 in bipart.core0 else bipart.core1
        )
        assert {0, 1, 2} <= hot_side

    def test_partition2_minimizes_cut_on_barbell(self):
        # Two triangles joined by one bridge: the min cut is the bridge.
        g = make_graph(
            [0] * 6,
            [
                (0, 1, 0), (1, 2, 0), (2, 0, 0),
                (2, 3, 0),
                (3, 4, 0), (4, 5, 0), (5, 3, 0),
            ],
        )
        bipart = GraphPartitioner(PARTITION2)(g, [0.0] * 6)
        assert bipart.num_connective_edges == 1
        assert bipart.connective_edges[0] == (2, 3)

    def test_deterministic(self):
        rng = random.Random(30)
        g = random_graph(rng, 8, 3)
        partitioner = GraphPartitioner()
        b1 = partitioner(g, [0.0] * 8)
        b2 = partitioner(g, [0.0] * 8)
        assert b1.core0 == b2.core0


class TestMetisPartitioner:
    def test_both_sides_nonempty(self):
        rng = random.Random(40)
        partitioner = MetisPartitioner()
        for _ in range(15):
            g = random_graph(rng, rng.randrange(4, 20), 4)
            bipart = partitioner(g, None)
            assert bipart.core0 and bipart.core1

    def test_barbell_cut(self):
        g = make_graph(
            [0] * 6,
            [
                (0, 1, 0), (1, 2, 0), (2, 0, 0),
                (2, 3, 0),
                (3, 4, 0), (4, 5, 0), (5, 3, 0),
            ],
        )
        bipart = MetisPartitioner()(g, None)
        assert bipart.num_connective_edges == 1

    def test_edge_union_recovers_graph(self):
        rng = random.Random(50)
        partitioner = MetisPartitioner()
        g = random_graph(rng, 12, 6)
        bipart = partitioner(g, None)
        recovered = set()
        for side in (bipart.side0, bipart.side1):
            for u, v, label in side.graph.edges():
                ou, ov = side.to_original(u), side.to_original(v)
                recovered.add((min(ou, ov), max(ou, ov), label))
        assert recovered == {
            (min(u, v), max(u, v), label) for u, v, label in g.edges()
        }

    def test_balance(self):
        # On a long path the bisection should be roughly balanced.
        g = path_graph(24)
        bipart = MetisPartitioner()(g, None)
        assert 6 <= len(bipart.core0) <= 18

    def test_trivial_graph(self):
        bipart = MetisPartitioner()(make_graph([0], []), None)
        assert bipart.side1.graph.num_vertices == 0

"""Shared test fixtures and graph builders."""

from __future__ import annotations

import random

import pytest

from repro.graph.database import GraphDatabase
from repro.graph.labeled_graph import LabeledGraph


def make_graph(vertex_labels, edges) -> LabeledGraph:
    """Shorthand constructor used throughout the tests."""
    return LabeledGraph.from_vertices_and_edges(vertex_labels, edges)


def triangle(labels=(0, 0, 0), edge_label=0) -> LabeledGraph:
    return make_graph(
        labels,
        [(0, 1, edge_label), (1, 2, edge_label), (2, 0, edge_label)],
    )


def path_graph(n: int, vlabel=0, elabel=0) -> LabeledGraph:
    """Path with ``n`` vertices (``n - 1`` edges)."""
    return make_graph(
        [vlabel] * n, [(i, i + 1, elabel) for i in range(n - 1)]
    )


def star_graph(leaves: int, center_label=0, leaf_label=1, elabel=0):
    return make_graph(
        [center_label] + [leaf_label] * leaves,
        [(0, i + 1, elabel) for i in range(leaves)],
    )


def random_graph(
    rng: random.Random,
    n: int,
    extra_edges: int = 0,
    num_vertex_labels: int = 3,
    num_edge_labels: int = 2,
) -> LabeledGraph:
    """Random connected graph: spanning tree + up to ``extra_edges`` chords."""
    graph = LabeledGraph()
    for _ in range(n):
        graph.add_vertex(rng.randrange(num_vertex_labels))
    for v in range(1, n):
        graph.add_edge(v, rng.randrange(v), rng.randrange(num_edge_labels))
    tries = 0
    while tries < extra_edges * 3 and graph.num_edges < n - 1 + extra_edges:
        u, v = rng.randrange(n), rng.randrange(n)
        tries += 1
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v, rng.randrange(num_edge_labels))
    return graph


def random_database(
    seed: int,
    num_graphs: int = 10,
    n: int = 7,
    extra_edges: int = 2,
    num_vertex_labels: int = 3,
    num_edge_labels: int = 2,
) -> GraphDatabase:
    rng = random.Random(seed)
    return GraphDatabase.from_graphs(
        random_graph(
            rng,
            rng.randrange(max(2, n - 2), n + 1),
            extra_edges,
            num_vertex_labels,
            num_edge_labels,
        )
        for _ in range(num_graphs)
    )


def permuted_copy(graph: LabeledGraph, perm: list[int]) -> LabeledGraph:
    """Isomorphic copy of ``graph`` with vertices reordered by ``perm``."""
    inverse = [0] * graph.num_vertices
    for new, old in enumerate(perm):
        inverse[old] = new
    clone = LabeledGraph()
    for old in perm:
        clone.add_vertex(graph.vertex_label(old))
    for u, v, label in graph.edges():
        clone.add_edge(inverse[u], inverse[v], label)
    return clone


@pytest.fixture
def small_db() -> GraphDatabase:
    """A tiny deterministic database with known frequent patterns.

    Three graphs sharing the labeled path 0-1 / 1-1; graph 2 adds a
    triangle.
    """
    g0 = make_graph([0, 1, 1], [(0, 1, 0), (1, 2, 1)])
    g1 = make_graph([0, 1, 1, 2], [(0, 1, 0), (1, 2, 1), (2, 3, 0)])
    g2 = make_graph(
        [0, 1, 1],
        [(0, 1, 0), (1, 2, 1), (2, 0, 1)],
    )
    return GraphDatabase.from_graphs([g0, g1, g2])


@pytest.fixture
def medium_db() -> GraphDatabase:
    return random_database(seed=42, num_graphs=12, n=8, extra_edges=2)

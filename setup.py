"""Setup shim for environments without the `wheel` package (offline boxes).

All project metadata lives in pyproject.toml; this file only enables the
legacy `setup.py develop` editable-install path."""
from setuptools import setup

setup()
